//! Shared experiment harness: runs benchmarks under every selector and
//! machine configuration, producing the rows behind each figure.

use mg_core::candidate::SelectionConfig;
use mg_core::pipeline::{prepare, profile_workload};
use mg_core::select::{Selector, SlackProfileModel, SpKind};
use mg_sim::{simulate, DynMgConfig, MachineConfig, MgConfig, SimOptions, SimResult};
use mg_workloads::{BenchmarkSpec, Executor, InputSet, Trace, Workload};
use serde::{Deserialize, Serialize};

/// Which selection scheme a run uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Scheme {
    /// No mini-graphs at all.
    NoMg,
    /// `Struct-All` static selection.
    StructAll,
    /// `Struct-None` static selection.
    StructNone,
    /// `Struct-Bounded` static selection.
    StructBounded,
    /// `Slack-Profile` (full model).
    SlackProfile,
    /// `Slack-Profile-Delay` (no consumer-slack rule).
    SlackProfileDelay,
    /// `Slack-Profile-SIAL` (arrival-order heuristic).
    SlackProfileSial,
    /// Miss-aware `Slack-Profile` (observed latencies in rule #2 — the
    /// paper's stated future work for `mcf`).
    SlackProfileMem,
    /// `Slack-Dynamic` (Struct-All pool + run-time disabling, outlined
    /// penalty).
    SlackDynamic,
    /// `Ideal-Slack-Dynamic` (no outlining penalty).
    IdealSlackDynamic,
    /// `Ideal-Slack-Dynamic-Delay` (delay evidence only, no penalty).
    IdealSlackDynamicDelay,
    /// `Ideal-Slack-Dynamic-SIAL` (arrival heuristic, no penalty).
    IdealSlackDynamicSial,
}

impl Scheme {
    /// Paper-style display name.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::NoMg => "no-minigraphs",
            Scheme::StructAll => "Struct-All",
            Scheme::StructNone => "Struct-None",
            Scheme::StructBounded => "Struct-Bounded",
            Scheme::SlackProfile => "Slack-Profile",
            Scheme::SlackProfileDelay => "Slack-Profile-Delay",
            Scheme::SlackProfileSial => "Slack-Profile-SIAL",
            Scheme::SlackProfileMem => "Slack-Profile-Mem",
            Scheme::SlackDynamic => "Slack-Dynamic",
            Scheme::IdealSlackDynamic => "Ideal-Slack-Dynamic",
            Scheme::IdealSlackDynamicDelay => "Ideal-SD-Delay",
            Scheme::IdealSlackDynamicSial => "Ideal-SD-SIAL",
        }
    }

    fn dyn_config(self) -> Option<DynMgConfig> {
        match self {
            Scheme::SlackDynamic => Some(DynMgConfig::slack_dynamic()),
            Scheme::IdealSlackDynamic => Some(DynMgConfig::ideal()),
            Scheme::IdealSlackDynamicDelay => Some(DynMgConfig::ideal_delay()),
            Scheme::IdealSlackDynamicSial => Some(DynMgConfig::ideal_sial()),
            _ => None,
        }
    }
}

/// One benchmark, fully prepared: workload, trace, profile, and the
/// tagged programs for each static selector (prepared lazily).
pub struct BenchContext {
    /// The benchmark spec.
    pub spec: BenchmarkSpec,
    /// Generated workload (on the run input).
    pub workload: Workload,
    /// Committed-path trace (identical across configurations).
    pub trace: Trace,
    /// Per-static execution frequencies.
    pub freqs: Vec<u64>,
    /// Local slack profile (self-trained unless overridden).
    pub slack: mg_sim::SlackProfile,
    sel_cfg: SelectionConfig,
}

impl BenchContext {
    /// Generates, executes, and profiles a benchmark on its primary
    /// input, training the slack profile on `train_cfg` (the paper
    /// self-trains on the reduced target machine).
    pub fn new(spec: &BenchmarkSpec, train_cfg: &MachineConfig) -> BenchContext {
        Self::with_inputs(spec, train_cfg, &spec.primary_input(), &spec.primary_input())
    }

    /// Full control: `train_input` drives profiling, `run_input` drives
    /// the evaluated execution (for cross-input robustness studies).
    pub fn with_inputs(
        spec: &BenchmarkSpec,
        train_cfg: &MachineConfig,
        train_input: &InputSet,
        run_input: &InputSet,
    ) -> BenchContext {
        let train_w = spec.generate_with_input(train_input);
        let (_, freqs, slack) = profile_workload(&train_w, train_cfg);
        let workload = spec.generate_with_input(run_input);
        let (trace, _) = Executor::new(&workload.program)
            .run_with_mem(&workload.init_mem)
            .expect("workload executes");
        // Frequencies for selection come from the training run; the
        // static layout is input-independent, so ids align.
        BenchContext {
            spec: spec.clone(),
            workload,
            trace,
            freqs,
            slack,
            sel_cfg: SelectionConfig::default(),
        }
    }

    /// The selection configuration in use.
    pub fn selection_config(&self) -> &SelectionConfig {
        &self.sel_cfg
    }

    /// Overrides the selection configuration (ablations).
    pub fn set_selection_config(&mut self, cfg: SelectionConfig) {
        self.sel_cfg = cfg;
    }

    fn selector_for(&self, scheme: Scheme) -> Option<Selector> {
        let sp = |kind| {
            Selector::SlackProfile(
                SlackProfileModel {
                    kind,
                    ..SlackProfileModel::default()
                },
                self.slack.clone(),
            )
        };
        match scheme {
            Scheme::NoMg => None,
            Scheme::StructAll
            | Scheme::SlackDynamic
            | Scheme::IdealSlackDynamic
            | Scheme::IdealSlackDynamicDelay
            | Scheme::IdealSlackDynamicSial => Some(Selector::StructAll),
            Scheme::StructNone => Some(Selector::StructNone),
            Scheme::StructBounded => Some(Selector::StructBounded),
            Scheme::SlackProfile => Some(sp(SpKind::Full)),
            Scheme::SlackProfileDelay => Some(sp(SpKind::DelayOnly)),
            Scheme::SlackProfileSial => Some(sp(SpKind::Sial)),
            Scheme::SlackProfileMem => Some(Selector::SlackProfile(
                SlackProfileModel::miss_aware(),
                self.slack.clone(),
            )),
        }
    }

    /// Runs one scheme on one machine configuration.
    pub fn run(&self, scheme: Scheme, machine: &MachineConfig) -> SchemeRun {
        match self.selector_for(scheme) {
            None => {
                let r = simulate(
                    &self.workload.program,
                    &self.trace,
                    machine,
                    SimOptions::default(),
                );
                SchemeRun::from_sim(scheme, r, 0.0)
            }
            Some(selector) => {
                let prepared = prepare(
                    &self.workload.program,
                    &self.freqs,
                    &selector,
                    &self.sel_cfg,
                );
                // The tagged program reorders blocks; its committed path
                // must be re-derived functionally.
                let (trace, _) = Executor::new(&prepared.program)
                    .run_with_mem(&self.workload.init_mem)
                    .expect("rewritten workload executes");
                let mg_machine = machine.clone().with_mg(MgConfig::paper());
                let opts = SimOptions {
                    dyn_mg: scheme.dyn_config(),
                    ..SimOptions::default()
                };
                let r = simulate(&prepared.program, &trace, &mg_machine, opts);
                SchemeRun::from_sim(scheme, r, prepared.est_coverage)
            }
        }
    }
}

/// Result of one (scheme, machine) run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SchemeRun {
    /// The scheme.
    pub scheme: Scheme,
    /// Instructions per cycle.
    pub ipc: f64,
    /// Total cycles.
    pub cycles: u64,
    /// Measured dynamic coverage.
    pub coverage: f64,
    /// Coverage estimated at selection time.
    pub est_coverage: f64,
    /// Templates dynamically disabled (Slack-Dynamic only).
    pub disabled_templates: u64,
    /// Serialized handle executions observed.
    pub serialized_handles: u64,
}

impl SchemeRun {
    fn from_sim(scheme: Scheme, r: SimResult, est_coverage: f64) -> SchemeRun {
        assert!(!r.hit_cycle_cap, "simulation hit its cycle cap");
        SchemeRun {
            scheme,
            ipc: r.ipc(),
            cycles: r.stats.cycles,
            coverage: r.stats.coverage(),
            est_coverage,
            disabled_templates: r.stats.disabled_templates,
            serialized_handles: r.stats.serialized_handles,
        }
    }
}

/// Writes a JSON result file under `results/` at the workspace root,
/// creating the directory if needed. Returns the path written.
pub fn save_json<T: Serialize>(name: &str, value: &T) -> std::path::PathBuf {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serialize results");
    std::fs::write(&path, json).expect("write results file");
    path
}

/// Geometric mean of a non-empty slice of positive values.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let sum: f64 = values.iter().map(|v| v.ln()).sum();
    (sum / values.len() as f64).exp()
}

/// Arithmetic mean.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Formats an S-curve: values sorted ascending, one line per program.
pub fn s_curve(mut values: Vec<(String, f64)>) -> Vec<(String, f64)> {
    values.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    values
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_and_mean() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn s_curve_sorts() {
        let v = s_curve(vec![("b".into(), 2.0), ("a".into(), 1.0)]);
        assert_eq!(v[0].0, "a");
    }
}
