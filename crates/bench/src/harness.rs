//! Shared experiment harness: runs benchmarks under every selector and
//! machine configuration, producing the rows behind each figure.
//!
//! The harness API is *fallible*: contexts are built with
//! [`BenchContext::builder`] (or [`BenchContext::try_new`]) and runs
//! executed with [`BenchContext::try_run`], both returning
//! [`Result`]s over [`BenchError`] so a sweep can record a failed cell
//! and continue. This is the only construction path — the old
//! panicking wrappers are gone.

use crate::cache::{self, CacheOutcome, ContextArtifacts};
use mg_core::candidate::SelectionConfig;
use mg_core::pipeline::try_prepare;
use mg_core::select::{Selector, SlackProfileModel, SpKind};
use mg_sim::{simulate, DynMgConfig, MachineConfig, MgConfig, SimOptions, SimResult};
use mg_workloads::{BenchmarkSpec, Executor, InputSet, Trace, Workload};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Version of the JSON results schema written by [`save_json`]. Bump on
/// any change to row shapes or envelope fields.
pub const SCHEMA_VERSION: u32 = 1;

/// Which selection scheme a run uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Scheme {
    /// No mini-graphs at all.
    NoMg,
    /// `Struct-All` static selection.
    StructAll,
    /// `Struct-None` static selection.
    StructNone,
    /// `Struct-Bounded` static selection.
    StructBounded,
    /// `Slack-Profile` (full model).
    SlackProfile,
    /// `Slack-Profile-Delay` (no consumer-slack rule).
    SlackProfileDelay,
    /// `Slack-Profile-SIAL` (arrival-order heuristic).
    SlackProfileSial,
    /// Miss-aware `Slack-Profile` (observed latencies in rule #2 — the
    /// paper's stated future work for `mcf`).
    SlackProfileMem,
    /// `Slack-Dynamic` (Struct-All pool + run-time disabling, outlined
    /// penalty).
    SlackDynamic,
    /// `Ideal-Slack-Dynamic` (no outlining penalty).
    IdealSlackDynamic,
    /// `Ideal-Slack-Dynamic-Delay` (delay evidence only, no penalty).
    IdealSlackDynamicDelay,
    /// `Ideal-Slack-Dynamic-SIAL` (arrival heuristic, no penalty).
    IdealSlackDynamicSial,
}

impl Scheme {
    /// Every scheme, in paper presentation order.
    pub const ALL: [Scheme; 12] = [
        Scheme::NoMg,
        Scheme::StructAll,
        Scheme::StructNone,
        Scheme::StructBounded,
        Scheme::SlackProfile,
        Scheme::SlackProfileDelay,
        Scheme::SlackProfileSial,
        Scheme::SlackProfileMem,
        Scheme::SlackDynamic,
        Scheme::IdealSlackDynamic,
        Scheme::IdealSlackDynamicDelay,
        Scheme::IdealSlackDynamicSial,
    ];

    /// Parses a paper-style display name (as produced by
    /// [`Scheme::name`]), case-insensitively.
    pub fn from_name(name: &str) -> Option<Scheme> {
        Scheme::ALL
            .into_iter()
            .find(|s| s.name().eq_ignore_ascii_case(name))
    }

    /// Paper-style display name.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::NoMg => "no-minigraphs",
            Scheme::StructAll => "Struct-All",
            Scheme::StructNone => "Struct-None",
            Scheme::StructBounded => "Struct-Bounded",
            Scheme::SlackProfile => "Slack-Profile",
            Scheme::SlackProfileDelay => "Slack-Profile-Delay",
            Scheme::SlackProfileSial => "Slack-Profile-SIAL",
            Scheme::SlackProfileMem => "Slack-Profile-Mem",
            Scheme::SlackDynamic => "Slack-Dynamic",
            Scheme::IdealSlackDynamic => "Ideal-Slack-Dynamic",
            Scheme::IdealSlackDynamicDelay => "Ideal-SD-Delay",
            Scheme::IdealSlackDynamicSial => "Ideal-SD-SIAL",
        }
    }

    fn dyn_config(self) -> Option<DynMgConfig> {
        match self {
            Scheme::SlackDynamic => Some(DynMgConfig::slack_dynamic()),
            Scheme::IdealSlackDynamic => Some(DynMgConfig::ideal()),
            Scheme::IdealSlackDynamicDelay => Some(DynMgConfig::ideal_delay()),
            Scheme::IdealSlackDynamicSial => Some(DynMgConfig::ideal_sial()),
            _ => None,
        }
    }
}

/// Why a benchmark context could not be built or a cell could not run.
///
/// Every variant owns plain `String`/integer data and round-trips through
/// serde: the sweep journal persists failed cells as first-class rows, so
/// a resumed sweep replays them bit-identically instead of re-running
/// them.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BenchError {
    /// A functional execution failed (`stage` says which one).
    Exec {
        /// Benchmark name.
        bench: String,
        /// Which execution failed (train input, run input, rewritten
        /// program).
        stage: String,
        /// The underlying executor error, rendered.
        detail: String,
    },
    /// The binary rewriter rejected a scheme's selection (oversized
    /// instance, unschedulable group, or a structurally invalid result).
    /// A well-behaved selector never produces one of these; the sweep
    /// records the row as an error instead of aborting.
    Rewrite {
        /// Benchmark name.
        bench: String,
        /// The scheme whose selection was rejected.
        scheme: Scheme,
        /// The underlying [`RewriteError`](mg_core::rewrite::RewriteError),
        /// rendered.
        detail: String,
    },
    /// The timing simulation hit its cycle cap — the run's numbers are
    /// meaningless, but the sweep can record the failure and continue.
    CycleCap {
        /// Benchmark name.
        bench: String,
        /// The scheme whose simulation hit the cap.
        scheme: Scheme,
    },
    /// A harness configuration knob (environment variable) was rejected.
    Config {
        /// The knob, e.g. `MG_JOBS`.
        knob: String,
        /// The offending value as given.
        value: String,
        /// Why it was rejected.
        detail: String,
    },
    /// The cell's code panicked; the supervisor caught the unwind at the
    /// cell boundary and recorded it as a failure row instead of letting
    /// it abort the sweep.
    Panicked {
        /// Benchmark name.
        bench: String,
        /// Index of the cell that panicked (in spec cell order).
        cell: usize,
        /// The panic payload, rendered (`&str`/`String` payloads are
        /// preserved verbatim; anything else becomes a placeholder).
        payload: String,
    },
    /// The cell exceeded the sweep's wall-clock watchdog and was
    /// abandoned.
    TimedOut {
        /// Benchmark name.
        bench: String,
        /// Index of the cell that timed out (in spec cell order).
        cell: usize,
        /// The configured watchdog limit, in milliseconds.
        limit_ms: u64,
    },
    /// The sweep was asked to shut down before this cell ran; the cell
    /// was skipped, not attempted. Interrupted rows are never journaled,
    /// so a resumed sweep re-runs them.
    Interrupted {
        /// Benchmark name.
        bench: String,
    },
}

impl fmt::Display for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchError::Exec {
                bench,
                stage,
                detail,
            } => {
                write!(f, "{bench}: {stage} failed: {detail}")
            }
            BenchError::Rewrite {
                bench,
                scheme,
                detail,
            } => {
                write!(
                    f,
                    "{bench}: rewrite failed under {}: {detail}",
                    scheme.name()
                )
            }
            BenchError::CycleCap { bench, scheme } => {
                write!(
                    f,
                    "{bench}: simulation hit its cycle cap under {}",
                    scheme.name()
                )
            }
            BenchError::Config {
                knob,
                value,
                detail,
            } => {
                write!(f, "invalid {knob}={value:?}: {detail}")
            }
            BenchError::Panicked {
                bench,
                cell,
                payload,
            } => {
                write!(f, "{bench}: cell {cell} panicked: {payload}")
            }
            BenchError::TimedOut {
                bench,
                cell,
                limit_ms,
            } => {
                write!(f, "{bench}: cell {cell} exceeded the {limit_ms}ms watchdog")
            }
            BenchError::Interrupted { bench } => {
                write!(f, "{bench}: skipped (sweep shutdown requested)")
            }
        }
    }
}

impl std::error::Error for BenchError {}

/// Configures and builds a [`BenchContext`].
///
/// Defaults: train and run on the benchmark's primary input, the default
/// [`SelectionConfig`], context caching on (memory + disk).
#[derive(Clone, Debug)]
pub struct BenchContextBuilder {
    spec: BenchmarkSpec,
    train_cfg: MachineConfig,
    train_input: Option<InputSet>,
    run_input: Option<InputSet>,
    sel_cfg: SelectionConfig,
    cache: bool,
    disk_cache: bool,
}

impl BenchContextBuilder {
    /// The input set profiling runs on (default: the primary input).
    pub fn train_input(mut self, input: InputSet) -> BenchContextBuilder {
        self.train_input = Some(input);
        self
    }

    /// The input set the evaluated execution runs on (default: the
    /// primary input).
    pub fn run_input(mut self, input: InputSet) -> BenchContextBuilder {
        self.run_input = Some(input);
        self
    }

    /// The selection configuration (ablations).
    pub fn selection_config(mut self, cfg: SelectionConfig) -> BenchContextBuilder {
        self.sel_cfg = cfg;
        self
    }

    /// Enables/disables the context cache entirely (default on).
    pub fn cache(mut self, on: bool) -> BenchContextBuilder {
        self.cache = on;
        self
    }

    /// Enables/disables only the on-disk cache layer (default on).
    pub fn disk_cache(mut self, on: bool) -> BenchContextBuilder {
        self.disk_cache = on;
        self
    }

    /// Generates, executes, and profiles the benchmark.
    pub fn build(self) -> Result<BenchContext, BenchError> {
        let train_input = self
            .train_input
            .unwrap_or_else(|| self.spec.primary_input());
        let run_input = self.run_input.unwrap_or_else(|| self.spec.primary_input());
        let (workload, trace, freqs, slack, cache_outcome) = if self.cache {
            let (a, outcome) = cache::context(
                &self.spec,
                &self.train_cfg,
                &train_input,
                &run_input,
                self.disk_cache,
            )?;
            (
                a.workload.clone(),
                a.trace.clone(),
                a.freqs.clone(),
                a.slack.clone(),
                outcome,
            )
        } else {
            let ContextArtifacts {
                workload,
                trace,
                freqs,
                slack,
            } = cache::compute_uncached(&self.spec, &self.train_cfg, &train_input, &run_input)?;
            (workload, trace, freqs, slack, CacheOutcome::Miss)
        };
        Ok(BenchContext {
            spec: self.spec,
            workload,
            trace,
            freqs,
            slack,
            sel_cfg: self.sel_cfg,
            cache_outcome,
        })
    }
}

/// One benchmark, fully prepared: workload, trace, frequency profile, and
/// slack profile, ready to run any scheme on any machine.
pub struct BenchContext {
    /// The benchmark spec.
    pub spec: BenchmarkSpec,
    /// Generated workload (on the run input).
    pub workload: Workload,
    /// Committed-path trace (identical across configurations).
    pub trace: Trace,
    /// Per-static execution frequencies.
    pub freqs: Vec<u64>,
    /// Local slack profile (self-trained unless overridden).
    pub slack: mg_sim::SlackProfile,
    sel_cfg: SelectionConfig,
    cache_outcome: CacheOutcome,
}

impl BenchContext {
    /// Starts building a context that trains its slack profile on
    /// `train_cfg` (the paper self-trains on the reduced target machine).
    pub fn builder(spec: &BenchmarkSpec, train_cfg: &MachineConfig) -> BenchContextBuilder {
        BenchContextBuilder {
            spec: spec.clone(),
            train_cfg: train_cfg.clone(),
            train_input: None,
            run_input: None,
            sel_cfg: SelectionConfig::default(),
            cache: true,
            disk_cache: true,
        }
    }

    /// Generates, executes, and profiles a benchmark on its primary
    /// input. Shorthand for `builder(spec, train_cfg).build()`.
    pub fn try_new(
        spec: &BenchmarkSpec,
        train_cfg: &MachineConfig,
    ) -> Result<BenchContext, BenchError> {
        Self::builder(spec, train_cfg).build()
    }

    /// How this context's artifacts were served by the cache (a context
    /// built with caching disabled reports a miss).
    pub fn cache_outcome(&self) -> CacheOutcome {
        self.cache_outcome
    }

    /// The selection configuration in use.
    pub fn selection_config(&self) -> &SelectionConfig {
        &self.sel_cfg
    }

    /// Overrides the selection configuration (ablations).
    pub fn set_selection_config(&mut self, cfg: SelectionConfig) {
        self.sel_cfg = cfg;
    }

    fn selector_for(&self, scheme: Scheme) -> Option<Selector> {
        let sp = |kind| {
            Selector::SlackProfile(
                SlackProfileModel {
                    kind,
                    ..SlackProfileModel::default()
                },
                self.slack.clone(),
            )
        };
        match scheme {
            Scheme::NoMg => None,
            Scheme::StructAll
            | Scheme::SlackDynamic
            | Scheme::IdealSlackDynamic
            | Scheme::IdealSlackDynamicDelay
            | Scheme::IdealSlackDynamicSial => Some(Selector::StructAll),
            Scheme::StructNone => Some(Selector::StructNone),
            Scheme::StructBounded => Some(Selector::StructBounded),
            Scheme::SlackProfile => Some(sp(SpKind::Full)),
            Scheme::SlackProfileDelay => Some(sp(SpKind::DelayOnly)),
            Scheme::SlackProfileSial => Some(sp(SpKind::Sial)),
            Scheme::SlackProfileMem => Some(Selector::SlackProfile(
                SlackProfileModel::miss_aware(),
                self.slack.clone(),
            )),
        }
    }

    /// Runs one scheme on one machine configuration.
    pub fn try_run(
        &self,
        scheme: Scheme,
        machine: &MachineConfig,
    ) -> Result<SchemeRun, BenchError> {
        self.try_run_with(scheme, machine, None, None)
    }

    /// Runs one scheme on one machine with optional overrides for the
    /// mini-graph hardware (default [`MgConfig::paper`]) and the
    /// selection configuration (default: the context's).
    pub fn try_run_with(
        &self,
        scheme: Scheme,
        machine: &MachineConfig,
        mg: Option<MgConfig>,
        sel: Option<&SelectionConfig>,
    ) -> Result<SchemeRun, BenchError> {
        let (r, est_coverage) = self.try_sim_with(scheme, machine, mg, sel)?;
        SchemeRun::try_from_sim(&self.spec.name, scheme, r, est_coverage)
    }

    /// Like [`BenchContext::try_run_with`], but returns the raw
    /// [`SimResult`] (plus the selection-time coverage estimate) instead
    /// of the condensed [`SchemeRun`]. A cycle-capped run is *not* an
    /// error at this layer — `hit_cycle_cap` is reported in the result —
    /// so callers like the golden-stats digest can still observe the full
    /// statistics.
    pub fn try_sim_with(
        &self,
        scheme: Scheme,
        machine: &MachineConfig,
        mg: Option<MgConfig>,
        sel: Option<&SelectionConfig>,
    ) -> Result<(SimResult, f64), BenchError> {
        let p = self.prepare_sim(scheme, machine, mg, sel)?;
        let est = p.est_coverage;
        Ok((p.simulate(), est))
    }

    /// Builds everything a timing simulation of one (scheme, machine)
    /// cell needs — the (possibly rewritten) program, its committed
    /// trace, the machine, and the simulator options — without running
    /// it. This is the seam the engine-throughput harness (`perf`) uses
    /// to time [`simulate`] in isolation, excluding selection and
    /// functional re-execution.
    pub fn prepare_sim(
        &self,
        scheme: Scheme,
        machine: &MachineConfig,
        mg: Option<MgConfig>,
        sel: Option<&SelectionConfig>,
    ) -> Result<PreparedSim, BenchError> {
        match self.selector_for(scheme) {
            None => Ok(PreparedSim {
                program: self.workload.program.clone(),
                trace: self.trace.clone(),
                machine: machine.clone(),
                opts: SimOptions::default(),
                est_coverage: 0.0,
            }),
            Some(selector) => {
                let prepared = try_prepare(
                    &self.workload.program,
                    &self.freqs,
                    &selector,
                    sel.unwrap_or(&self.sel_cfg),
                )
                .map_err(|e| BenchError::Rewrite {
                    bench: self.spec.name.clone(),
                    scheme,
                    detail: e.to_string(),
                })?;
                // The tagged program reorders blocks; its committed path
                // must be re-derived functionally.
                let (trace, _) = Executor::new(&prepared.program)
                    .run_with_mem(&self.workload.init_mem)
                    .map_err(|e| BenchError::Exec {
                        bench: self.spec.name.clone(),
                        stage: "rewritten-program execution".to_string(),
                        detail: e.to_string(),
                    })?;
                let mg_machine = machine.clone().with_mg(mg.unwrap_or_else(MgConfig::paper));
                let opts = SimOptions {
                    dyn_mg: scheme.dyn_config(),
                    ..SimOptions::default()
                };
                Ok(PreparedSim {
                    program: prepared.program,
                    trace,
                    machine: mg_machine,
                    opts,
                    est_coverage: prepared.est_coverage,
                })
            }
        }
    }

    /// Runs one scheme on one machine with the pipeline observer
    /// attached, returning both the condensed row and the full
    /// observability report (trace, stall attribution, occupancy).
    ///
    /// Only available with the `obs` feature; without it the simulator
    /// carries no instrumentation at all.
    #[cfg(feature = "obs")]
    pub fn try_run_obs(
        &self,
        scheme: Scheme,
        machine: &MachineConfig,
        obs: mg_obs::ObsConfig,
    ) -> Result<(SchemeRun, mg_obs::ObsReport), BenchError> {
        self.try_run_with_obs(scheme, machine, None, None, obs)
    }

    /// [`BenchContext::try_run_obs`] with the full per-cell overrides of
    /// [`BenchContext::try_run_with`] — the sweep runner's instrumented
    /// cell path.
    #[cfg(feature = "obs")]
    pub fn try_run_with_obs(
        &self,
        scheme: Scheme,
        machine: &MachineConfig,
        mg: Option<MgConfig>,
        sel: Option<&SelectionConfig>,
        obs: mg_obs::ObsConfig,
    ) -> Result<(SchemeRun, mg_obs::ObsReport), BenchError> {
        let mut p = self.prepare_sim(scheme, machine, mg, sel)?;
        p.opts.obs = Some(obs);
        let mut r = p.simulate();
        let report = r
            .obs
            .take()
            .expect("simulate returns a report when an observer is configured");
        let run = SchemeRun::try_from_sim(&self.spec.name, scheme, r, p.est_coverage)?;
        Ok((run, report))
    }
}

/// A fully prepared timing-simulation input for one (scheme, machine)
/// cell: run [`PreparedSim::simulate`] any number of times; every run is
/// identical.
#[derive(Clone, Debug)]
pub struct PreparedSim {
    /// The (possibly rewritten/tagged) program to simulate.
    pub program: mg_isa::Program,
    /// Its committed-path trace.
    pub trace: Trace,
    /// The machine configuration (mini-graph support applied).
    pub machine: MachineConfig,
    /// Simulator options (dynamic-disabling config applied).
    pub opts: SimOptions,
    /// Coverage estimated at selection time.
    pub est_coverage: f64,
}

impl PreparedSim {
    /// Runs the timing simulation.
    pub fn simulate(&self) -> SimResult {
        simulate(&self.program, &self.trace, &self.machine, self.opts)
    }

    /// Dynamic trace length (committed operations fed to the engine).
    pub fn trace_len(&self) -> usize {
        self.trace.len()
    }
}

/// Result of one (scheme, machine) run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SchemeRun {
    /// The scheme.
    pub scheme: Scheme,
    /// Instructions per cycle.
    pub ipc: f64,
    /// Total cycles.
    pub cycles: u64,
    /// Measured dynamic coverage.
    pub coverage: f64,
    /// Coverage estimated at selection time.
    pub est_coverage: f64,
    /// Templates dynamically disabled (Slack-Dynamic only).
    pub disabled_templates: u64,
    /// Serialized handle executions observed.
    pub serialized_handles: u64,
    /// Data-L1 miss rate observed in the run.
    pub dl1_miss_rate: f64,
}

impl SchemeRun {
    fn try_from_sim(
        bench: &str,
        scheme: Scheme,
        r: SimResult,
        est_coverage: f64,
    ) -> Result<SchemeRun, BenchError> {
        if r.hit_cycle_cap {
            return Err(BenchError::CycleCap {
                bench: bench.to_string(),
                scheme,
            });
        }
        Ok(SchemeRun {
            scheme,
            ipc: r.ipc(),
            cycles: r.stats.cycles,
            coverage: r.stats.coverage(),
            est_coverage,
            disabled_templates: r.stats.disabled_templates,
            serialized_handles: r.stats.serialized_handles,
            dl1_miss_rate: r.stats.dl1.miss_rate(),
        })
    }
}

/// The per-benchmark observability section attached to results produced
/// with the observer enabled: identifies the (benchmark, scheme) cell and
/// carries the full [`mg_obs::ObsReport`] (trace tail, stall attribution,
/// occupancy, windowed IPC).
#[cfg(feature = "obs")]
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ObsSection {
    /// Benchmark name.
    pub bench: String,
    /// Scheme the instrumented run used.
    pub scheme: Scheme,
    /// The run's observability report.
    pub report: mg_obs::ObsReport,
}

#[cfg(feature = "obs")]
impl ObsSection {
    /// Wraps a report with its cell identity.
    pub fn new(bench: &str, scheme: Scheme, report: mg_obs::ObsReport) -> ObsSection {
        ObsSection {
            bench: bench.to_string(),
            scheme,
            report,
        }
    }

    /// Whether the report's stall attribution conserves cycles.
    pub fn conservation_ok(&self) -> bool {
        self.report.conservation_ok()
    }
}

/// The envelope every results file is wrapped in: a schema version and a
/// fingerprint of the simulated machine family, so downstream consumers
/// can reject rows produced by an incompatible harness.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Envelope<T> {
    /// [`SCHEMA_VERSION`] at write time.
    pub schema_version: u32,
    /// [`machine_fingerprint`] at write time.
    pub machine_fingerprint: String,
    /// The figure's rows.
    pub rows: T,
}

/// A stable fingerprint of the simulated machine family (baseline +
/// reduced configurations and the paper's mini-graph support). Results
/// with different fingerprints came from different modeled hardware and
/// must not be compared.
pub fn machine_fingerprint() -> String {
    let repr = format!(
        "{:?}|{:?}|{:?}",
        MachineConfig::baseline(),
        MachineConfig::reduced(),
        MgConfig::paper()
    );
    format!("{:016x}", cache::stable_hash64(repr.as_bytes()))
}

/// Writes a JSON result file under `results/` at the workspace root,
/// wrapping `rows` in the versioned [`Envelope`] and creating the
/// directory if needed. Returns the path written.
pub fn save_json<T: Serialize>(name: &str, rows: &T) -> std::path::PathBuf {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join(format!("{name}.json"));
    let envelope = Envelope {
        schema_version: SCHEMA_VERSION,
        machine_fingerprint: machine_fingerprint(),
        rows,
    };
    let json = serde_json::to_string_pretty(&envelope).expect("serialize results");
    std::fs::write(&path, json).expect("write results file");
    path
}

/// Writes a binary result record under `results/` at the workspace
/// root: the same versioned [`Envelope`] as [`save_json`], sealed as a
/// checksummed [`crate::binfmt`] container of the given kind. The
/// record's container schema is [`SCHEMA_VERSION`], matching the
/// envelope inside. Returns the path written (`results/<name>.mgb`).
pub fn save_bin<T: Serialize>(
    name: &str,
    kind: crate::binfmt::RecordKind,
    rows: &T,
) -> std::path::PathBuf {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join(format!("{name}.{}", crate::binfmt::EXT));
    let envelope = Envelope {
        schema_version: SCHEMA_VERSION,
        machine_fingerprint: machine_fingerprint(),
        rows,
    };
    let bytes = crate::binfmt::to_record(kind, SCHEMA_VERSION, &envelope);
    std::fs::write(&path, bytes).expect("write results file");
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_fingerprint_is_stable_and_hex() {
        let a = machine_fingerprint();
        assert_eq!(a, machine_fingerprint());
        assert_eq!(a.len(), 16);
        assert!(a.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn envelope_roundtrips() {
        let e = Envelope {
            schema_version: SCHEMA_VERSION,
            machine_fingerprint: machine_fingerprint(),
            rows: vec![1u32, 2, 3],
        };
        let json = serde_json::to_string(&e).unwrap();
        let back: Envelope<Vec<u32>> = serde_json::from_str(&json).unwrap();
        assert_eq!(back.schema_version, SCHEMA_VERSION);
        assert_eq!(back.rows, vec![1, 2, 3]);
    }

    #[test]
    fn scheme_names_round_trip() {
        for s in Scheme::ALL {
            assert_eq!(Scheme::from_name(s.name()), Some(s));
            assert_eq!(Scheme::from_name(&s.name().to_lowercase()), Some(s));
        }
        assert_eq!(Scheme::from_name("no-such-scheme"), None);
    }

    #[test]
    fn bench_error_displays_context() {
        let e = BenchError::CycleCap {
            bench: "spec_mcf".into(),
            scheme: Scheme::StructAll,
        };
        let s = e.to_string();
        assert!(s.contains("spec_mcf") && s.contains("Struct-All"));
        let x = BenchError::Exec {
            bench: "mib_sha".into(),
            stage: "run-input execution".into(),
            detail: "boom".into(),
        };
        assert!(x.to_string().contains("run-input execution"));
    }

    #[test]
    fn bench_error_round_trips_through_serde() {
        let errors = [
            BenchError::Exec {
                bench: "mib_sha".into(),
                stage: "run-input execution".into(),
                detail: "boom".into(),
            },
            BenchError::Rewrite {
                bench: "spec_gcc".into(),
                scheme: Scheme::StructAll,
                detail: "oversized instance in bb3: 300 constituents".into(),
            },
            BenchError::CycleCap {
                bench: "spec_mcf".into(),
                scheme: Scheme::SlackDynamic,
            },
            BenchError::Config {
                knob: "MG_JOBS".into(),
                value: "O8".into(),
                detail: "expected a positive integer".into(),
            },
            BenchError::Panicked {
                bench: "gzip-like".into(),
                cell: 2,
                payload: "mg-fault: injected panic".into(),
            },
            BenchError::TimedOut {
                bench: "mib_fft".into(),
                cell: 1,
                limit_ms: 5_000,
            },
            BenchError::Interrupted {
                bench: "mib_crc32".into(),
            },
        ];
        for e in errors {
            let json = serde_json::to_string(&e).unwrap();
            let back: BenchError = serde_json::from_str(&json).unwrap();
            assert_eq!(back, e, "round-trip of {json}");
        }
    }
}
