//! Figure 9: robustness of slack profiles.
//!
//! Top: microarchitecture sensitivity — Slack-Profile mini-graphs for
//! MediaBench/CommBench programs, trained on the reduced target machine
//! (self) vs on a 2-way machine, an 8-way machine, and a machine with a
//! quartered data memory hierarchy; all evaluated on the reduced machine.
//!
//! Bottom: input sensitivity — SPECint/MiBench programs with profiles
//! trained on the evaluation input (self) vs a different input set.
//!
//! Usage: `fig9 [N]` limits each half to the first N qualifying
//! benchmarks.

use mg_bench::{mean, save_json, BenchContext, Scheme};
use mg_sim::MachineConfig;
use mg_workloads::{suite, Suite};
use serde::Serialize;

#[derive(Serialize)]
struct TopRow {
    bench: String,
    self_trained: f64,
    cross_2way: f64,
    cross_8way: f64,
    cross_dmem4: f64,
}

#[derive(Serialize)]
struct BottomRow {
    bench: String,
    self_input: f64,
    cross_input: f64,
}

fn main() {
    let take: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(usize::MAX);
    let base = MachineConfig::baseline();
    let red = MachineConfig::reduced();

    println!("FIGURE 9 TOP: microarchitecture sensitivity (Media+Comm, Slack-Profile on reduced)");
    let mut top = Vec::new();
    for spec in suite()
        .iter()
        .filter(|s| matches!(s.suite, Suite::MediaBench | Suite::CommBench))
        .take(take)
    {
        let rel = |train_cfg: &MachineConfig| -> f64 {
            let ctx = BenchContext::new(spec, train_cfg);
            let b = ctx.run(Scheme::NoMg, &base);
            ctx.run(Scheme::SlackProfile, &red).ipc / b.ipc
        };
        let row = TopRow {
            bench: spec.name.clone(),
            self_trained: rel(&red),
            cross_2way: rel(&MachineConfig::two_way()),
            cross_8way: rel(&MachineConfig::eight_way()),
            cross_dmem4: rel(&MachineConfig::reduced_dmem4()),
        };
        println!(
            "  {:<20} self {:.3}  2way {:.3}  8way {:.3}  dmem/4 {:.3}",
            row.bench, row.self_trained, row.cross_2way, row.cross_8way, row.cross_dmem4
        );
        top.push(row);
    }
    let m = |f: &dyn Fn(&TopRow) -> f64| mean(&top.iter().map(f).collect::<Vec<_>>());
    println!(
        "  means: self {:.3}  2way {:.3}  8way {:.3}  dmem/4 {:.3}  (paper: points lie on the self curve)",
        m(&|r| r.self_trained),
        m(&|r| r.cross_2way),
        m(&|r| r.cross_8way),
        m(&|r| r.cross_dmem4)
    );
    let max_dev = top
        .iter()
        .flat_map(|r| {
            [r.cross_2way, r.cross_8way, r.cross_dmem4]
                .into_iter()
                .map(move |v| (v - r.self_trained).abs())
        })
        .fold(0.0f64, f64::max);
    println!("  max |cross - self| deviation: {:.3}", max_dev);

    println!("\nFIGURE 9 BOTTOM: input sensitivity (SPEC+MiBench, Slack-Profile on reduced)");
    let mut bottom = Vec::new();
    for spec in suite()
        .iter()
        .filter(|s| matches!(s.suite, Suite::SpecInt | Suite::MiBench))
        .take(take)
    {
        let run_input = spec.primary_input();
        let selfc = BenchContext::with_inputs(spec, &red, &run_input, &run_input);
        let crossc = BenchContext::with_inputs(spec, &red, &spec.alternate_input(), &run_input);
        let b = selfc.run(Scheme::NoMg, &base);
        let row = BottomRow {
            bench: spec.name.clone(),
            self_input: selfc.run(Scheme::SlackProfile, &red).ipc / b.ipc,
            cross_input: crossc.run(Scheme::SlackProfile, &red).ipc / b.ipc,
        };
        println!(
            "  {:<20} self {:.3}  cross-input {:.3}",
            row.bench, row.self_input, row.cross_input
        );
        bottom.push(row);
    }
    let self_mean = mean(&bottom.iter().map(|r| r.self_input).collect::<Vec<_>>());
    let cross_mean = mean(&bottom.iter().map(|r| r.cross_input).collect::<Vec<_>>());
    println!(
        "  means: self {:.3}  cross {:.3}  |delta| {:.3}  (paper: <2% absolute)",
        self_mean,
        cross_mean,
        (self_mean - cross_mean).abs()
    );

    let path = save_json("fig9_top", &top);
    let path2 = save_json("fig9_bottom", &bottom);
    eprintln!("rows written to {} and {}", path.display(), path2.display());
}
