//! Figure 9: robustness of slack profiles.
//!
//! Top: microarchitecture sensitivity — Slack-Profile mini-graphs for
//! MediaBench/CommBench programs, trained on the reduced target machine
//! (self) vs on a 2-way machine, an 8-way machine, and a machine with a
//! quartered data memory hierarchy; all evaluated on the reduced machine.
//!
//! Bottom: input sensitivity — SPECint/MiBench programs with profiles
//! trained on the evaluation input (self) vs a different input set.
//!
//! Usage: `fig9 [N]` limits each half to the first N qualifying
//! benchmarks.

use mg_bench::{mean, save_json, InputSel, Scheme, SweepCell, SweepSpec};
use mg_obs::{mg_error, mg_info};
use mg_sim::MachineConfig;
use mg_workloads::{suite, BenchmarkSpec, Suite};
use serde::Serialize;

#[derive(Serialize)]
struct TopRow {
    bench: String,
    self_trained: f64,
    cross_2way: f64,
    cross_8way: f64,
    cross_dmem4: f64,
}

#[derive(Serialize)]
struct BottomRow {
    bench: String,
    self_input: f64,
    cross_input: f64,
}

/// A sweep evaluating Slack-Profile on the reduced machine with profiles
/// trained on `train_cfg` (cross-training: the no-mg baseline cell is
/// train-independent, so only the self sweep carries it).
fn sp_sweep(benches: &[BenchmarkSpec], train_cfg: &MachineConfig, with_base: bool) -> SweepSpec {
    let red = MachineConfig::reduced();
    let mut spec = SweepSpec::new(train_cfg).benches(benches.iter().cloned());
    if with_base {
        spec = spec.cell(SweepCell::new(Scheme::NoMg, &MachineConfig::baseline()));
    }
    spec.cell(SweepCell::new(Scheme::SlackProfile, &red))
}

fn main() {
    let take: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(usize::MAX);
    let red = MachineConfig::reduced();

    println!("FIGURE 9 TOP: microarchitecture sensitivity (Media+Comm, Slack-Profile on reduced)");
    let media_comm: Vec<BenchmarkSpec> = suite()
        .iter()
        .filter(|s| matches!(s.suite, Suite::MediaBench | Suite::CommBench))
        .take(take)
        .cloned()
        .collect();
    let self_r = sp_sweep(&media_comm, &red, true).run_cli();
    let cross_2 = sp_sweep(&media_comm, &MachineConfig::two_way(), false).run_cli();
    let cross_8 = sp_sweep(&media_comm, &MachineConfig::eight_way(), false).run_cli();
    let cross_d = sp_sweep(&media_comm, &MachineConfig::reduced_dmem4(), false).run_cli();
    let mut top = Vec::new();
    for (i, bench) in self_r.rows.iter().enumerate() {
        let cells = (
            bench.all_ok(),
            cross_2.rows[i].get(0),
            cross_8.rows[i].get(0),
            cross_d.rows[i].get(0),
        );
        let (Ok(ok), Ok(c2), Ok(c8), Ok(cd)) = cells else {
            mg_error!("skipped: {} (a training sweep failed)", bench.bench);
            continue;
        };
        let b = ok[0];
        let row = TopRow {
            bench: bench.bench.clone(),
            self_trained: ok[1].ipc / b.ipc,
            cross_2way: c2.ipc / b.ipc,
            cross_8way: c8.ipc / b.ipc,
            cross_dmem4: cd.ipc / b.ipc,
        };
        println!(
            "  {:<20} self {:.3}  2way {:.3}  8way {:.3}  dmem/4 {:.3}",
            row.bench, row.self_trained, row.cross_2way, row.cross_8way, row.cross_dmem4
        );
        top.push(row);
    }
    let m = |f: &dyn Fn(&TopRow) -> f64| mean(&top.iter().map(f).collect::<Vec<_>>());
    println!(
        "  means: self {:.3}  2way {:.3}  8way {:.3}  dmem/4 {:.3}  (paper: points lie on the self curve)",
        m(&|r| r.self_trained),
        m(&|r| r.cross_2way),
        m(&|r| r.cross_8way),
        m(&|r| r.cross_dmem4)
    );
    let max_dev = top
        .iter()
        .flat_map(|r| {
            [r.cross_2way, r.cross_8way, r.cross_dmem4]
                .into_iter()
                .map(move |v| (v - r.self_trained).abs())
        })
        .fold(0.0f64, f64::max);
    println!("  max |cross - self| deviation: {:.3}", max_dev);

    println!("\nFIGURE 9 BOTTOM: input sensitivity (SPEC+MiBench, Slack-Profile on reduced)");
    let spec_mib: Vec<BenchmarkSpec> = suite()
        .iter()
        .filter(|s| matches!(s.suite, Suite::SpecInt | Suite::MiBench))
        .take(take)
        .cloned()
        .collect();
    let self_i = sp_sweep(&spec_mib, &red, true).run_cli();
    let cross_i = sp_sweep(&spec_mib, &red, false)
        .train_input(InputSel::Alternate)
        .run_cli();
    let mut bottom = Vec::new();
    for (i, bench) in self_i.rows.iter().enumerate() {
        let (Ok(ok), Ok(cx)) = (bench.all_ok(), cross_i.rows[i].get(0)) else {
            mg_error!("skipped: {} (an input sweep failed)", bench.bench);
            continue;
        };
        let b = ok[0];
        let row = BottomRow {
            bench: bench.bench.clone(),
            self_input: ok[1].ipc / b.ipc,
            cross_input: cx.ipc / b.ipc,
        };
        println!(
            "  {:<20} self {:.3}  cross-input {:.3}",
            row.bench, row.self_input, row.cross_input
        );
        bottom.push(row);
    }
    let self_mean = mean(&bottom.iter().map(|r| r.self_input).collect::<Vec<_>>());
    let cross_mean = mean(&bottom.iter().map(|r| r.cross_input).collect::<Vec<_>>());
    println!(
        "  means: self {:.3}  cross {:.3}  |delta| {:.3}  (paper: <2% absolute)",
        self_mean,
        cross_mean,
        (self_mean - cross_mean).abs()
    );

    let path = save_json("fig9_top", &top);
    let path2 = save_json("fig9_bottom", &bottom);
    mg_info!("rows written to {} and {}", path.display(), path2.display());
}
