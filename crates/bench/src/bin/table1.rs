//! Table 1: the simulated machine configurations.
//!
//! Prints the fully-provisioned and reduced processors plus the
//! mini-graph support parameters, as configured in `mg_sim::config`.

use mg_sim::config::rename_regs;
use mg_sim::{MachineConfig, MgConfig};

fn row(label: &str, base: impl std::fmt::Display, red: impl std::fmt::Display) {
    println!("{label:<28} {base:>18} {red:>18}");
}

fn main() {
    let base = MachineConfig::baseline();
    let red = MachineConfig::reduced();
    println!("TABLE 1: simulated processors\n");
    row("parameter", "baseline", "reduced");
    row("----", "----", "----");
    row(
        "fetch/issue/commit width",
        base.fetch_width,
        red.fetch_width,
    );
    row("issue queue entries", base.iq_entries, red.iq_entries);
    row("physical registers", base.phys_regs, red.phys_regs);
    row(
        "  (rename registers)",
        rename_regs(&base),
        rename_regs(&red),
    );
    row("ROB entries", base.rob_entries, red.rob_entries);
    row(
        "load/store queue",
        format!("{}/{}", base.lq_entries, base.sq_entries),
        format!("{}/{}", red.lq_entries, red.sq_entries),
    );
    row(
        "simple-int issue/cycle",
        base.issue_simple,
        red.issue_simple,
    );
    row(
        "complex-int issue/cycle",
        base.issue_complex,
        red.issue_complex,
    );
    row("load issue/cycle", base.issue_load, red.issue_load);
    row("store issue/cycle", base.issue_store, red.issue_store);
    row(
        "pipeline depth (front+back)",
        format!("{}+{}", base.front_depth, base.sched_to_exec),
        format!("{}+{}", red.front_depth, red.sched_to_exec),
    );
    row(
        "I$ / D$",
        format!(
            "{}KB/{}KB",
            base.il1.size_bytes / 1024,
            base.dl1.size_bytes / 1024
        ),
        format!(
            "{}KB/{}KB",
            red.il1.size_bytes / 1024,
            red.dl1.size_bytes / 1024
        ),
    );
    row(
        "L2 / mem latency",
        format!("{}KB/{}cyc", base.l2.size_bytes / 1024, base.mem_lat),
        format!("{}KB/{}cyc", red.l2.size_bytes / 1024, red.mem_lat),
    );
    row(
        "bpred (bim/gsh/meta bits)",
        format!(
            "{}/{}/{}",
            base.bpred.bimodal_bits, base.bpred.gshare_bits, base.bpred.meta_bits
        ),
        format!(
            "{}/{}/{}",
            red.bpred.bimodal_bits, red.bpred.gshare_bits, red.bpred.meta_bits
        ),
    );
    row(
        "BTB sets x assoc / RAS",
        format!(
            "{}x{}/{}",
            base.bpred.btb_sets, base.bpred.btb_assoc, base.bpred.ras_entries
        ),
        format!(
            "{}x{}/{}",
            red.bpred.btb_sets, red.bpred.btb_assoc, red.bpred.ras_entries
        ),
    );
    row(
        "StoreSets SSIT entries",
        base.storesets.ssit_entries,
        red.storesets.ssit_entries,
    );

    let mg = MgConfig::paper();
    println!("\nmini-graph support (when enabled):");
    println!("  max constituents            {}", mg.alu_pipeline_depth);
    println!(
        "  handles issued per cycle    {} (<= {} with memory)",
        mg.max_mg_issue, mg.max_mem_mg_issue
    );
    println!("  MGT entries                 {}", mg.mgt_entries);
    println!(
        "  ALU pipelines x depth       {} x {}",
        mg.alu_pipelines, mg.alu_pipeline_depth
    );
    println!(
        "  internal serialization      {}",
        mg.internal_serialization
    );
}
