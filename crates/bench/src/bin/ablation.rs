//! Ablations of the design choices DESIGN.md calls out (beyond the
//! paper's figures):
//!
//! * MGT template budget sweep (the paper fixes 512);
//! * maximum mini-graph size (the paper fixes 4 = ALU pipeline depth);
//! * internal serialization on/off (§4.1's design-choice claim);
//! * handle issue bandwidth (number of ALU pipelines).
//!
//! Usage: `ablation [N]` limits the sweep to the first N benchmarks
//! (default 20 — ablations multiply simulations).

use mg_bench::{mean, save_json, Scheme, SweepCell, SweepSpec};
use mg_core::candidate::SelectionConfig;
use mg_sim::{MachineConfig, MgConfig};
use mg_workloads::suite;
use serde::Serialize;

#[derive(Serialize)]
struct Ablation {
    name: String,
    rel_perf: f64,
    coverage: f64,
}

fn main() {
    let take: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    let base = MachineConfig::baseline();
    let red = MachineConfig::reduced();

    // (selection-config override, machine-mg override, label)
    let variants: Vec<(SelectionConfig, MgConfig, String)> = {
        let mut v = Vec::new();
        for budget in [32usize, 128, 512, 4096] {
            v.push((
                SelectionConfig {
                    mgt_budget: budget,
                    ..Default::default()
                },
                MgConfig::paper(),
                format!("mgt-budget-{budget}"),
            ));
        }
        for size in [2usize, 3, 4] {
            v.push((
                SelectionConfig {
                    max_size: size,
                    ..Default::default()
                },
                MgConfig::paper(),
                format!("max-size-{size}"),
            ));
        }
        v.push((
            Default::default(),
            MgConfig {
                internal_serialization: false,
                ..MgConfig::paper()
            },
            "no-internal-serialization".into(),
        ));
        for pipes in [1u32, 2, 4] {
            v.push((
                Default::default(),
                MgConfig {
                    max_mg_issue: pipes,
                    max_mem_mg_issue: pipes.div_ceil(2),
                    alu_pipelines: pipes,
                    ..MgConfig::paper()
                },
                format!("alu-pipelines-{pipes}"),
            ));
        }
        v
    };

    // Cell 0 is the no-mg baseline; cell 1+vi is variant vi as a
    // Slack-Profile run on the reduced machine with its overrides.
    let result = SweepSpec::new(&red)
        .benches(suite().iter().take(take).cloned())
        .cell(SweepCell::new(Scheme::NoMg, &base))
        .cells(variants.iter().map(|(sel_cfg, mg_cfg, _)| {
            SweepCell::new(Scheme::SlackProfile, &red)
                .with_mg(*mg_cfg)
                .with_sel(*sel_cfg)
        }))
        .run_cli();
    let mut acc: Vec<(Vec<f64>, Vec<f64>)> = vec![(Vec::new(), Vec::new()); variants.len()];
    for bench in &result.rows {
        let ok = match bench.all_ok() {
            Ok(runs) => runs,
            Err(e) => {
                eprintln!("skipped: {e}");
                continue;
            }
        };
        let b = ok[0];
        for (vi, cell) in ok[1..].iter().enumerate() {
            acc[vi].0.push(cell.ipc / b.ipc);
            acc[vi].1.push(cell.coverage);
        }
    }

    println!("ABLATIONS (Slack-Profile on the reduced machine, {take} benchmarks)");
    println!("{:<28} {:>10} {:>10}", "variant", "rel-perf", "coverage");
    let mut out = Vec::new();
    for (vi, (_, _, name)) in variants.iter().enumerate() {
        let rp = mean(&acc[vi].0);
        let cov = mean(&acc[vi].1);
        println!("{name:<28} {rp:>10.3} {cov:>10.3}");
        out.push(Ablation {
            name: name.clone(),
            rel_perf: rp,
            coverage: cov,
        });
    }
    let path = save_json("ablation", &out);
    eprintln!("rows written to {}", path.display());
}
