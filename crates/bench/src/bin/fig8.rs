//! Figure 8: limit study — exhaustive search over all 1024 combinations
//! of the 10 most frequent non-overlapping mini-graph candidates of the
//! short-running `adpcm.c` analogue, on the reduced processor.
//!
//! Prints the coverage/performance position of every selector's chosen
//! set, the exhaustive best, and each selector's per-candidate verdicts
//! (the paper's bottom table).

use mg_bench::{par_map, save_json, Config};
use mg_core::candidate::{enumerate, Candidate};
use mg_core::classify::{classify, Serialization};
use mg_core::depgraph::{schedule_with_groups, BlockDeps};
use mg_core::pipeline::profile_workload;
use mg_core::rewrite::{rewrite, ChosenInstance};
use mg_core::select::{slack_profile_admits, SlackProfileModel};
use mg_sim::{simulate, DynMgConfig, MachineConfig, MgConfig, SimOptions};
use mg_workloads::{limit_study_benchmark, Executor};
use serde::Serialize;
use std::collections::HashMap;

#[derive(Serialize)]
struct Point {
    mask: u16,
    coverage: f64,
    rel_perf: f64,
}

fn main() {
    let spec = limit_study_benchmark();
    let w = spec.generate();
    let red = MachineConfig::reduced();
    let base = MachineConfig::baseline();
    let (trace, freqs, slack) = profile_workload(&w, &red);
    let base_ipc = simulate(&w.program, &trace, &base, SimOptions::default()).ipc();

    // The 10 most frequent non-overlapping (and jointly schedulable)
    // candidates.
    let mut pool = enumerate(&w.program, &Default::default());
    pool.sort_by_key(|c| {
        std::cmp::Reverse(
            (c.len() as u64 - 1) * freqs[w.program.id_of(c.block, c.positions[0]).index()],
        )
    });
    let mut chosen: Vec<Candidate> = Vec::new();
    let mut used: Vec<bool> = vec![false; w.program.static_count()];
    let mut deps: HashMap<u32, BlockDeps> = HashMap::new();
    for c in pool {
        if chosen.len() == 10 {
            break;
        }
        if c.positions
            .iter()
            .any(|&p| used[w.program.id_of(c.block, p).index()])
        {
            continue;
        }
        let d = deps
            .entry(c.block.0)
            .or_insert_with(|| BlockDeps::build(w.program.block(c.block)));
        let mut groups: Vec<&[usize]> = chosen
            .iter()
            .filter(|x| x.block == c.block)
            .map(|x| x.positions.as_slice())
            .collect();
        groups.push(c.positions.as_slice());
        if schedule_with_groups(d, &groups).is_none() {
            continue;
        }
        for &p in &c.positions {
            used[w.program.id_of(c.block, p).index()] = true;
        }
        chosen.push(c);
    }
    assert_eq!(chosen.len(), 10, "benchmark must yield 10 candidates");

    // Selector verdicts per candidate.
    let sp_model = SlackProfileModel::default();
    let verdicts: Vec<(bool, bool, bool)> = chosen
        .iter()
        .map(|c| {
            let sn = !c.shape.potentially_serializing();
            let sb = classify(&c.shape) != Serialization::Unbounded;
            let sp = slack_profile_admits(&w.program, c, &slack, &sp_model);
            (sn, sb, sp)
        })
        .collect();

    // Exhaustive sweep, parallelized over the 1024 masks: every subset is
    // an independent rewrite + functional run + simulation.
    let run_subset = |mask: u16| -> (f64, f64) {
        let instances: Vec<ChosenInstance> = chosen
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(i, c)| ChosenInstance {
                candidate: c.clone(),
                template: i as u16,
            })
            .collect();
        let prog = rewrite(&w.program, &instances);
        let (t, _) = Executor::new(&prog).run_with_mem(&w.init_mem).unwrap();
        let r = simulate(
            &prog,
            &t,
            &red.clone().with_mg(MgConfig::paper()),
            SimOptions::default(),
        );
        (r.stats.coverage(), r.ipc() / base_ipc)
    };
    let masks: Vec<u16> = (0u16..1024).collect();
    let jobs = Config::init_cli().effective_jobs();
    let points: Vec<Point> = par_map(&masks, jobs, |_, &mask| {
        let (cov, perf) = run_subset(mask);
        Point {
            mask,
            coverage: cov,
            rel_perf: perf,
        }
    });
    let best = points.iter().fold((0u16, f64::MIN), |b, p| {
        if p.rel_perf > b.1 {
            (p.mask, p.rel_perf)
        } else {
            b
        }
    });

    // Slack-Dynamic: run the full set with the controller and see which
    // templates survive.
    let sd_enabled_mask: u16 = {
        let instances: Vec<ChosenInstance> = chosen
            .iter()
            .enumerate()
            .map(|(i, c)| ChosenInstance {
                candidate: c.clone(),
                template: i as u16,
            })
            .collect();
        let prog = rewrite(&w.program, &instances);
        let (t, _) = Executor::new(&prog).run_with_mem(&w.init_mem).unwrap();
        let opts = SimOptions {
            dyn_mg: Some(DynMgConfig::slack_dynamic()),
            ..SimOptions::default()
        };
        let r = simulate(&prog, &t, &red.clone().with_mg(MgConfig::paper()), opts);
        // Approximate the surviving set by disabled-template count: we
        // report which templates the *static* SP/SB models would keep and
        // the count SD disabled.
        let disabled = r.stats.disabled_templates as usize;
        // Mask with the `disabled` lowest-scoring serializing templates
        // cleared (the controller targets harmful serialization).
        let mut mask = 0x3ffu16;
        let mut cleared = 0;
        for (i, v) in verdicts.iter().enumerate().rev() {
            if cleared == disabled {
                break;
            }
            if !v.2 {
                mask &= !(1 << i);
                cleared += 1;
            }
        }
        mask
    };

    let mask_of = |f: &dyn Fn(usize) -> bool| -> u16 {
        (0..10).filter(|&i| f(i)).fold(0u16, |m, i| m | (1 << i))
    };
    let sel_masks = [
        ("Struct-All", 0x3ffu16),
        ("Struct-None", mask_of(&|i| verdicts[i].0)),
        ("Struct-Bounded", mask_of(&|i| verdicts[i].1)),
        ("Slack-Profile", mask_of(&|i| verdicts[i].2)),
        ("Slack-Dynamic", sd_enabled_mask),
        ("Exhaustive-best", best.0),
    ];

    println!(
        "FIGURE 8: limit study on {} ({} dynamic instructions)",
        spec.name,
        trace.len()
    );
    println!("\ncandidate table (0-9, by descending score):");
    println!(
        "{:>3} {:>5} {:>6} {:>10} {:>12} | {:>3} {:>3} {:>3}",
        "id", "size", "freq", "serial?", "class", "SN", "SB", "SP"
    );
    for (i, c) in chosen.iter().enumerate() {
        let f = freqs[w.program.id_of(c.block, c.positions[0]).index()];
        let class = match classify(&c.shape) {
            Serialization::None => "none",
            Serialization::Bounded(_) => "bounded",
            Serialization::Unbounded => "unbounded",
        };
        let v = verdicts[i];
        println!(
            "{:>3} {:>5} {:>6} {:>10} {:>12} | {:>3} {:>3} {:>3}",
            i,
            c.len(),
            f,
            if c.shape.potentially_serializing() {
                "yes"
            } else {
                "no"
            },
            class,
            if v.0 { "y" } else { "-" },
            if v.1 { "y" } else { "-" },
            if v.2 { "y" } else { "-" },
        );
    }
    println!("\nselector positions (coverage, relative performance):");
    for (name, mask) in sel_masks {
        let p = &points[mask as usize];
        let ids: Vec<usize> = (0..10).filter(|&i| mask & (1 << i) != 0).collect();
        println!(
            "  {:<16} cov {:.3}  perf {:.3}  set {:?}",
            name, p.coverage, p.rel_perf, ids
        );
    }
    let span = points.iter().fold((f64::MAX, f64::MIN), |a, p| {
        (a.0.min(p.rel_perf), a.1.max(p.rel_perf))
    });
    println!(
        "\nscatter: 1024 subsets, perf range [{:.3}, {:.3}]",
        span.0, span.1
    );
    let path = save_json("fig8", &points);
    eprintln!("scatter written to {}", path.display());
}
