//! Before/after benchmark of the on-disk record formats: measures
//! record size and load/replay time for the binary `mg_bench::binfmt`
//! containers against their JSON-era equivalents, and writes
//! `results/BENCH_format.json`.
//!
//! Usage: `format_bench [N]` limits the sweep to the first N
//! benchmarks (default: the full 78-bench suite, as CI's
//! `format-smoke` job runs it).
//!
//! The journal and cache layers are measured on *real* records: the
//! bench runs a single-cell sweep over the suite with journaling kept,
//! then re-reads every journal row and disk-cache entry it produced.
//! Each record is also rendered to the byte-exact legacy JSON form
//! (checksummed `DiskRecord` envelope) so both formats decode the same
//! data. The span-trace and obs-pipeline layers use deterministic
//! synthetic documents of realistic shape, so the bench does not need
//! the `obs` feature.
//!
//! Exits non-zero if the binary format fails its acceptance gates on
//! the durability layers (journal + cache): records at least 3x
//! smaller than JSON and replay at least as fast.

use mg_bench::binfmt::{self, RecordKind};
use mg_bench::cache::{open_record, seal_record};
use mg_bench::{save_json, Scheme, SweepCell, SweepSpec};
use mg_obs::mg_info;
use mg_sim::MachineConfig;
use mg_workloads::suite;
use serde::{Serialize, Value};
use std::path::Path;
use std::time::Instant;

/// Decode repetitions per layer, to lift load times out of timer noise.
const REPS: u32 = 10;

#[derive(Serialize)]
struct LayerRow {
    layer: String,
    records: usize,
    bin_bytes: u64,
    json_bytes: u64,
    /// JSON bytes per binary byte (bigger is better for the new format).
    size_ratio: f64,
    bin_load_us: u64,
    json_load_us: u64,
    /// JSON load time per binary load time.
    load_speedup: f64,
}

/// One record measured in both formats: the sealed binary container
/// and the legacy checksummed-JSON envelope of the same decoded value.
struct Pair {
    bin: Vec<u8>,
    json: Vec<u8>,
}

fn pair_from_record(bytes: Vec<u8>) -> Option<Pair> {
    let header = binfmt::peek_header(&bytes).ok()?;
    let kind = RecordKind::from_u16(header.kind)?;
    let value = binfmt::open_value(&bytes, kind, header.schema).ok()?;
    let json = seal_record(serde_json::to_string(&value).ok()?)?;
    Some(Pair { bin: bytes, json })
}

fn decode_bin(bytes: &[u8]) -> Option<Value> {
    let header = binfmt::peek_header(bytes).ok()?;
    let kind = RecordKind::from_u16(header.kind)?;
    binfmt::open_value(bytes, kind, header.schema).ok()
}

fn decode_json(bytes: &[u8]) -> Option<Value> {
    let payload = open_record(bytes)?;
    serde_json::parse_value_str(&payload).ok()
}

/// Measures one layer: total sizes, and wall time to decode every
/// record `REPS` times in each format.
fn measure(layer: &str, pairs: &[Pair]) -> LayerRow {
    let bin_bytes: u64 = pairs.iter().map(|p| p.bin.len() as u64).sum();
    let json_bytes: u64 = pairs.iter().map(|p| p.json.len() as u64).sum();
    let t = Instant::now();
    for _ in 0..REPS {
        for p in pairs {
            assert!(decode_bin(&p.bin).is_some(), "binary record must decode");
        }
    }
    let bin_load_us = u64::try_from(t.elapsed().as_micros()).unwrap_or(u64::MAX);
    let t = Instant::now();
    for _ in 0..REPS {
        for p in pairs {
            assert!(decode_json(&p.json).is_some(), "JSON record must parse");
        }
    }
    let json_load_us = u64::try_from(t.elapsed().as_micros()).unwrap_or(u64::MAX);
    LayerRow {
        layer: layer.to_string(),
        records: pairs.len(),
        bin_bytes,
        json_bytes,
        size_ratio: json_bytes as f64 / (bin_bytes as f64).max(1.0),
        bin_load_us,
        json_load_us,
        load_speedup: json_load_us as f64 / (bin_load_us as f64).max(1.0),
    }
}

/// Collects every `.mgb` record under `dir` whose file name starts with
/// `prefix`, paired with its legacy JSON rendering.
fn pairs_from_dir(dir: &Path, prefix: &str) -> Vec<Pair> {
    let Ok(listing) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut paths: Vec<_> = listing
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.extension().is_some_and(|e| e == binfmt::EXT)
                && p.file_name()
                    .is_some_and(|n| n.to_string_lossy().starts_with(prefix))
        })
        .collect();
    paths.sort();
    paths
        .into_iter()
        .filter_map(|p| pair_from_record(std::fs::read(&p).ok()?))
        .collect()
}

/// A deterministic Chrome-trace document of `n` span events, shaped
/// like a real `MG_TRACE` drain.
fn synthetic_trace(n: u64) -> Vec<Pair> {
    let stages = ["train", "simulate", "select", "schedule"];
    let events: Vec<Value> = (0..n)
        .map(|i| {
            Value::Map(vec![
                ("name".into(), Value::Str(format!("bench-{}", i % 78))),
                (
                    "cat".into(),
                    Value::Str(stages[(i % 4) as usize].to_string()),
                ),
                ("ph".into(), Value::Str("X".into())),
                ("ts".into(), Value::U64(1_000 + 137 * i)),
                ("dur".into(), Value::U64(90 + (i % 400))),
                ("pid".into(), Value::U64(1)),
                ("tid".into(), Value::U64(1 + i % 8)),
                (
                    "args".into(),
                    Value::Map(vec![("depth".into(), Value::Str((1 + i % 3).to_string()))]),
                ),
            ])
        })
        .collect();
    let doc = Value::Map(vec![
        ("traceEvents".into(), Value::Seq(events)),
        ("displayTimeUnit".into(), Value::Str("ms".into())),
    ]);
    let bin = binfmt::to_record(RecordKind::SpanTrace, binfmt::SPAN_TRACE_SCHEMA, &doc);
    let json = seal_record(serde_json::to_string(&doc).expect("trace renders")).expect("seals");
    vec![Pair { bin, json }]
}

/// A deterministic obs-style pipeline dump of `n` per-op trace rows,
/// shaped like the `OBS_<bench>` artifact's dominant section.
fn synthetic_obs(n: u64) -> Vec<Pair> {
    let classes = ["alu", "load", "store", "branch", "mg"];
    let rows: Vec<Value> = (0..n)
        .map(|i| {
            Value::Map(vec![
                ("seq".into(), Value::U64(i)),
                ("pc".into(), Value::U64(0x0040_0000 + 4 * (i % 9000))),
                (
                    "class".into(),
                    Value::Str(classes[(i % 5) as usize].to_string()),
                ),
                ("fetch".into(), Value::U64(10 * i)),
                ("dispatch".into(), Value::U64(10 * i + 3)),
                ("issue".into(), Value::U64(10 * i + 5)),
                ("commit".into(), Value::U64(10 * i + 9)),
            ])
        })
        .collect();
    let doc = Value::Map(vec![
        ("schema_version".into(), Value::U64(1)),
        ("bench".into(), Value::Str("mib_crc32".into())),
        ("scheme".into(), Value::Str("Struct-All".into())),
        ("trace".into(), Value::Seq(rows)),
    ]);
    let bin = binfmt::to_record(RecordKind::ObsDump, 1, &doc);
    // The JSON-era obs artifact was written pretty-printed (save_json).
    let json =
        seal_record(serde_json::to_string_pretty(&doc).expect("dump renders")).expect("seals");
    vec![Pair { bin, json }]
}

fn main() {
    let cfg = mg_bench::Config::init_cli();
    let take: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(usize::MAX);
    let red = MachineConfig::reduced();

    // Produce real journal rows and disk-cache entries: one cell per
    // bench, journal kept for measurement (driven via `try_run`, not
    // `run_cli`, precisely so the journal survives the sweep).
    let journal_root = Path::new("results").join("format-bench-journal");
    let _ = std::fs::remove_dir_all(&journal_root);
    let result = SweepSpec::new(&red)
        .benches(suite().iter().take(take).cloned())
        .cell(SweepCell::new(Scheme::SlackProfile, &red))
        .journal(true)
        .journal_dir(&journal_root)
        .jobs(cfg.effective_jobs())
        .try_run()
        .unwrap_or_else(|e| {
            eprintln!("format bench sweep failed: {e}");
            std::process::exit(2);
        });
    let journal_dir = result
        .summary
        .journal_dir
        .clone()
        .expect("sweep was journaled");

    let rows = vec![
        measure("journal", &pairs_from_dir(&journal_dir, "row-")),
        measure("cache", &pairs_from_dir(Path::new("results/cache"), "ctx-")),
        measure("trace_spans", &synthetic_trace(5_000)),
        measure("obs_pipeline", &synthetic_obs(5_000)),
    ];
    let _ = std::fs::remove_dir_all(&journal_root);

    println!("FORMAT BENCH: binary records vs their JSON-era equivalents");
    println!(
        "{:<14} {:>7} {:>12} {:>12} {:>7} {:>12} {:>12} {:>8}",
        "layer", "records", "bin B", "json B", "ratio", "bin us", "json us", "speedup"
    );
    for r in &rows {
        println!(
            "{:<14} {:>7} {:>12} {:>12} {:>6.2}x {:>12} {:>12} {:>7.2}x",
            r.layer,
            r.records,
            r.bin_bytes,
            r.json_bytes,
            r.size_ratio,
            r.bin_load_us,
            r.json_load_us,
            r.load_speedup
        );
    }

    let path = save_json("BENCH_format", &rows);
    mg_info!("format benchmark written to {}", path.display());

    // Acceptance gates on the durability layers that replay on resume.
    let durable: Vec<&LayerRow> = rows
        .iter()
        .filter(|r| r.layer == "journal" || r.layer == "cache")
        .collect();
    let (bin_b, json_b, bin_us, json_us) = durable.iter().fold((0, 0, 0, 0), |acc, r| {
        (
            acc.0 + r.bin_bytes,
            acc.1 + r.json_bytes,
            acc.2 + r.bin_load_us,
            acc.3 + r.json_load_us,
        )
    });
    if durable.iter().any(|r| r.records == 0) {
        eprintln!("FORMAT GATE FAILED: a durability layer produced no records to measure");
        std::process::exit(1);
    }
    if json_b < 3 * bin_b {
        eprintln!(
            "FORMAT GATE FAILED: binary journal+cache records are only {:.2}x smaller than JSON (need 3x)",
            json_b as f64 / (bin_b as f64).max(1.0)
        );
        std::process::exit(1);
    }
    if bin_us > json_us {
        eprintln!("FORMAT GATE FAILED: binary replay took {bin_us}us vs {json_us}us for JSON");
        std::process::exit(1);
    }
    println!(
        "format gates ok: journal+cache {:.2}x smaller, replay {:.2}x faster",
        json_b as f64 / (bin_b as f64).max(1.0),
        json_us as f64 / (bin_us as f64).max(1.0)
    );
}
