//! Differential fuzzing driver: seeded random programs through the full
//! pipeline under every selector, checked against the functional oracle.
//!
//! ```text
//! verify [--seeds N] [--start S] [--seed S] [--selector NAME] [--adversarial]
//! ```
//!
//! * `--seeds N` — sweep seeds `start..start+N` (default 200);
//! * `--start S` — first seed of the sweep (default 0);
//! * `--seed S` — check exactly one seed (overrides the sweep);
//! * `--selector NAME` — restrict to one variant (`Struct-None`,
//!   `Struct-All`, `Struct-Bounded`, `Slack-Profile`, `Slack-Dynamic`);
//!   default is all five;
//! * `--adversarial` — enable the generator's adversarial shapes
//!   (1-instruction blocks, >255-instruction blocks).
//!
//! Exit code 0 = clean, 1 = counterexamples found, 2 = usage error.
//! Each counterexample is printed and also written (shrunk, with its
//! one-line repro command) to `results/verify/seed<S>-<variant>.txt`.

use mg_verify::{run_seed_variants, Counterexample, DiffConfig, Variant};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    seeds: u64,
    start: u64,
    single: Option<u64>,
    variants: Vec<Variant>,
    adversarial: bool,
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    eprintln!("usage: verify [--seeds N] [--start S] [--seed S] [--selector NAME] [--adversarial]");
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seeds: 200,
        start: 0,
        single: None,
        variants: Variant::ALL.to_vec(),
        adversarial: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut num = |name: &str| -> Result<u64, String> {
            it.next()
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse()
                .map_err(|_| format!("{name} needs an integer"))
        };
        match flag.as_str() {
            "--seeds" => args.seeds = num("--seeds")?,
            "--start" => args.start = num("--start")?,
            "--seed" => args.single = Some(num("--seed")?),
            "--selector" => {
                let name = it.next().ok_or("--selector needs a name")?;
                let v = Variant::from_name(&name)
                    .ok_or_else(|| format!("unknown selector {name:?}"))?;
                args.variants = vec![v];
            }
            "--adversarial" => args.adversarial = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn save_counterexample(ce: &Counterexample) -> std::io::Result<PathBuf> {
    let dir = PathBuf::from("results").join("verify");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("seed{}-{}.txt", ce.seed, ce.variant));
    std::fs::write(&path, format!("{ce}"))?;
    Ok(path)
}

fn main() -> ExitCode {
    mg_bench::Config::init_cli();
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => return usage(&e),
    };
    let cfg = if args.adversarial {
        DiffConfig::adversarial()
    } else {
        DiffConfig::default()
    };
    let seeds: Vec<u64> = match args.single {
        Some(s) => vec![s],
        None => (args.start..args.start + args.seeds).collect(),
    };
    let names: Vec<&str> = args.variants.iter().map(|v| v.name()).collect();
    println!(
        "verify: {} seed(s) x [{}]{}",
        seeds.len(),
        names.join(", "),
        if args.adversarial {
            " (adversarial)"
        } else {
            ""
        }
    );

    let mut failures = 0usize;
    for (i, &seed) in seeds.iter().enumerate() {
        let ces = run_seed_variants(seed, &cfg, &args.variants);
        for ce in &ces {
            failures += 1;
            eprintln!("\nFAIL {}", ce);
            match save_counterexample(ce) {
                Ok(path) => eprintln!("counterexample written to {}", path.display()),
                Err(e) => eprintln!("could not write counterexample: {e}"),
            }
        }
        if (i + 1) % 50 == 0 {
            println!("  {}/{} seeds, {} failure(s)", i + 1, seeds.len(), failures);
        }
    }
    if failures == 0 {
        println!(
            "ok: {} seed(s) clean under {} variant(s)",
            seeds.len(),
            args.variants.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("\n{failures} counterexample(s) found");
        ExitCode::from(1)
    }
}
