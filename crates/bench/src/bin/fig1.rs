//! Figure 1: serialization-aware mini-graph selection at a glance.
//!
//! Performance of the reduced processor relative to the fully-provisioned
//! one for all 78 programs, as independent S-curves: the `Slack-Profile`
//! selector against the two naive selectors and the no-mini-graph line.
//!
//! Usage: `fig1 [N]` limits the sweep to the first N benchmarks.

use mg_bench::{mean, s_curve, save_json, Scheme, SweepCell, SweepSpec};
use mg_obs::{mg_error, mg_info};
use mg_sim::MachineConfig;
use mg_workloads::suite;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    bench: String,
    nomg: f64,
    struct_all: f64,
    struct_none: f64,
    slack_profile: f64,
}

fn main() {
    let take: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(usize::MAX);
    let base = MachineConfig::baseline();
    let red = MachineConfig::reduced();
    let result = SweepSpec::new(&red)
        .benches(suite().iter().take(take).cloned())
        .cell(SweepCell::new(Scheme::NoMg, &base))
        .cell(SweepCell::new(Scheme::NoMg, &red))
        .cell(SweepCell::new(Scheme::StructAll, &red))
        .cell(SweepCell::new(Scheme::StructNone, &red))
        .cell(SweepCell::new(Scheme::SlackProfile, &red))
        .run_cli();
    let mut rows = Vec::new();
    for bench in &result.rows {
        let ok = match bench.all_ok() {
            Ok(runs) => runs,
            Err(e) => {
                mg_error!("skipped: {e}");
                continue;
            }
        };
        let b = ok[0];
        rows.push(Row {
            bench: bench.bench.clone(),
            nomg: ok[1].ipc / b.ipc,
            struct_all: ok[2].ipc / b.ipc,
            struct_none: ok[3].ipc / b.ipc,
            slack_profile: ok[4].ipc / b.ipc,
        });
    }

    println!("FIGURE 1: performance on the reduced processor relative to the full one");
    println!(
        "{:>4} {:>10} {:>12} {:>12} {:>14}",
        "idx", "no-mg", "Struct-All", "Struct-None", "Slack-Profile"
    );
    let curves: Vec<Vec<f64>> = [
        rows.iter().map(|r| r.nomg).collect::<Vec<_>>(),
        rows.iter().map(|r| r.struct_all).collect(),
        rows.iter().map(|r| r.struct_none).collect(),
        rows.iter().map(|r| r.slack_profile).collect(),
    ]
    .into_iter()
    .map(|v| {
        s_curve(
            v.into_iter()
                .enumerate()
                .map(|(i, x)| (i.to_string(), x))
                .collect(),
        )
        .into_iter()
        .map(|(_, x)| x)
        .collect()
    })
    .collect();
    for (i, (((a, b), c), d)) in curves[0]
        .iter()
        .zip(&curves[1])
        .zip(&curves[2])
        .zip(&curves[3])
        .enumerate()
    {
        println!("{i:>4} {a:>10.3} {b:>12.3} {c:>12.3} {d:>14.3}");
    }
    println!(
        "mean {:>10.3} {:>12.3} {:>12.3} {:>14.3}",
        mean(&curves[0]),
        mean(&curves[1]),
        mean(&curves[2]),
        mean(&curves[3])
    );
    println!(
        "\nSlack-Profile lets the reduced machine {} the full one on average \
         (paper: outperforms by 2%).",
        if mean(&curves[3]) >= 1.0 {
            "outperform"
        } else {
            "approach"
        }
    );
    let path = save_json("fig1", &rows);
    mg_info!("rows written to {}", path.display());
}
