//! Figure 7: isolating the components of the models.
//!
//! Top: the Slack-Profile model — full (rules #1-4) vs `-Delay` (no
//! consumer-slack rule) vs `-SIAL` (operand-arrival heuristic), against
//! Struct-All / Struct-None.
//!
//! Bottom: the Slack-Dynamic model — realistic vs `Ideal` (no outlining
//! penalty) vs `Ideal-Delay` (no consumer condition) vs `Ideal-SIAL`.
//!
//! All on the reduced processor, relative to the full baseline.
//!
//! Usage: `fig7 [N]` limits the sweep to the first N benchmarks.

use mg_bench::{mean, s_curve, save_json, Scheme, SweepCell, SweepSpec};
use mg_sim::MachineConfig;
use mg_workloads::suite;
use serde::Serialize;

const TOP: [Scheme; 5] = [
    Scheme::SlackProfile,
    Scheme::SlackProfileDelay,
    Scheme::SlackProfileSial,
    Scheme::StructAll,
    Scheme::StructNone,
];
const BOTTOM: [Scheme; 5] = [
    Scheme::SlackDynamic,
    Scheme::IdealSlackDynamic,
    Scheme::IdealSlackDynamicDelay,
    Scheme::IdealSlackDynamicSial,
    Scheme::StructAll,
];

// Cell layout: 0 = no-mg baseline, 1..=5 = TOP schemes on the reduced
// machine, 6..=9 = the Slack-Dynamic variants (BOTTOM shares Struct-All
// with TOP rather than re-running it).
const TOP_CELLS: [usize; 5] = [1, 2, 3, 4, 5];
const BOTTOM_CELLS: [usize; 5] = [6, 7, 8, 9, 4];

#[derive(Serialize)]
struct Row {
    bench: String,
    top: Vec<f64>,
    bottom: Vec<f64>,
}

fn main() {
    let take: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(usize::MAX);
    let base = MachineConfig::baseline();
    let red = MachineConfig::reduced();
    let result = SweepSpec::new(&red)
        .benches(suite().iter().take(take).cloned())
        .cell(SweepCell::new(Scheme::NoMg, &base))
        .cells(TOP.iter().map(|&s| SweepCell::new(s, &red)))
        .cells(BOTTOM[..4].iter().map(|&s| SweepCell::new(s, &red)))
        .run_cli();
    let mut rows = Vec::new();
    for bench in &result.rows {
        let ok = match bench.all_ok() {
            Ok(runs) => runs,
            Err(e) => {
                eprintln!("skipped: {e}");
                continue;
            }
        };
        let b = ok[0];
        rows.push(Row {
            bench: bench.bench.clone(),
            top: TOP_CELLS.iter().map(|&c| ok[c].ipc / b.ipc).collect(),
            bottom: BOTTOM_CELLS.iter().map(|&c| ok[c].ipc / b.ipc).collect(),
        });
    }

    for (title, schemes, get) in [
        ("TOP: Slack-Profile components", &TOP, 0usize),
        ("BOTTOM: Slack-Dynamic components", &BOTTOM, 1),
    ] {
        println!("\nFIGURE 7 {title} (reduced processor, relative performance)");
        print!("{:>4}", "idx");
        for s in schemes.iter() {
            print!(" {:>20}", s.name());
        }
        println!();
        let curves: Vec<Vec<f64>> = (0..schemes.len())
            .map(|si| {
                let vals: Vec<(String, f64)> = rows
                    .iter()
                    .map(|r| {
                        let v = if get == 0 { r.top[si] } else { r.bottom[si] };
                        (r.bench.clone(), v)
                    })
                    .collect();
                s_curve(vals).into_iter().map(|(_, v)| v).collect()
            })
            .collect();
        for i in 0..rows.len() {
            print!("{i:>4}");
            for c in &curves {
                print!(" {:>20.3}", c[i]);
            }
            println!();
        }
        print!("mean");
        for c in &curves {
            print!(" {:>20.3}", mean(c));
        }
        println!();
    }

    // The paper's component contributions.
    let m = |f: &dyn Fn(&Row) -> f64| mean(&rows.iter().map(f).collect::<Vec<_>>());
    println!("\nCOMPONENT CONTRIBUTIONS (paper in parentheses)");
    println!(
        "  consumer-slack rule (SP - SP-Delay):      {:+.1}pp  (+1pp)",
        100.0 * (m(&|r| r.top[0]) - m(&|r| r.top[1]))
    );
    println!(
        "  delay vs arrival heuristic (Delay - SIAL): {:+.1}pp  (+4pp)",
        100.0 * (m(&|r| r.top[1]) - m(&|r| r.top[2]))
    );
    println!(
        "  outlining penalty (Ideal-SD - SD):         {:+.1}pp  (+3pp)",
        100.0 * (m(&|r| r.bottom[1]) - m(&|r| r.bottom[0]))
    );
    println!(
        "  consumer condition, ideal (ISD - ISD-Delay): {:+.1}pp  (<1pp)",
        100.0 * (m(&|r| r.bottom[1]) - m(&|r| r.bottom[2]))
    );
    println!(
        "  delay vs SIAL, ideal (ISD-Delay - ISD-SIAL): {:+.1}pp  (>0pp)",
        100.0 * (m(&|r| r.bottom[2]) - m(&|r| r.bottom[3]))
    );
    let path = save_json("fig7", &rows);
    eprintln!("rows written to {}", path.display());
}
