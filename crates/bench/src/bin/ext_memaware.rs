//! Extension experiment: the miss-aware Slack-Profile.
//!
//! The paper notes one exception to Slack-Profile's dominance: *mcf* on
//! the fully-provisioned machine, because "Slack-Profile uses optimistic
//! execution latencies that do not account for cache misses, which plague
//! mcf. Remedying this is left for future work." This binary implements
//! the remedy — rule #2 chains constituents by *observed* per-static
//! latencies from the profile — and evaluates it against the stock model,
//! reporting the memory-bound benchmarks separately.
//!
//! Usage: `ext_memaware [N]`.

use mg_bench::{mean, save_json, Scheme, SweepCell, SweepSpec};
use mg_obs::{mg_error, mg_info};
use mg_sim::MachineConfig;
use mg_workloads::suite;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    bench: String,
    dl1_miss_rate: f64,
    sp_red: f64,
    sp_mem_red: f64,
    sp_full: f64,
    sp_mem_full: f64,
}

fn main() {
    let take: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(usize::MAX);
    let base = MachineConfig::baseline();
    let red = MachineConfig::reduced();
    let result = SweepSpec::new(&red)
        .benches(suite().iter().take(take).cloned())
        .cell(SweepCell::new(Scheme::NoMg, &base))
        .cell(SweepCell::new(Scheme::NoMg, &red))
        .cell(SweepCell::new(Scheme::SlackProfile, &red))
        .cell(SweepCell::new(Scheme::SlackProfileMem, &red))
        .cell(SweepCell::new(Scheme::SlackProfile, &base))
        .cell(SweepCell::new(Scheme::SlackProfileMem, &base))
        .run_cli();
    let mut rows = Vec::new();
    for bench in &result.rows {
        let ok = match bench.all_ok() {
            Ok(runs) => runs,
            Err(e) => {
                mg_error!("skipped: {e}");
                continue;
            }
        };
        let b = ok[0];
        rows.push(Row {
            bench: bench.bench.clone(),
            // The no-mg run on the reduced machine observes the D-L1 the
            // selectors contend with.
            dl1_miss_rate: ok[1].dl1_miss_rate,
            sp_red: ok[2].ipc / b.ipc,
            sp_mem_red: ok[3].ipc / b.ipc,
            sp_full: ok[4].ipc / b.ipc,
            sp_mem_full: ok[5].ipc / b.ipc,
        });
    }

    let (hot, cold): (Vec<&Row>, Vec<&Row>) = rows.iter().partition(|r| r.dl1_miss_rate > 0.10);
    println!("EXTENSION: miss-aware Slack-Profile (observed rule-#2 latencies)");
    println!(
        "\nmemory-bound benchmarks (D-L1 miss rate > 10%): {}",
        hot.len()
    );
    println!(
        "{:<18} {:>7} {:>9} {:>9} {:>9} {:>9}",
        "bench", "dl1m%", "SP(red)", "Mem(red)", "SP(full)", "Mem(full)"
    );
    for r in &hot {
        println!(
            "{:<18} {:>7.1} {:>9.3} {:>9.3} {:>9.3} {:>9.3}",
            r.bench,
            100.0 * r.dl1_miss_rate,
            r.sp_red,
            r.sp_mem_red,
            r.sp_full,
            r.sp_mem_full
        );
    }
    let m = |v: &[&Row], f: &dyn Fn(&Row) -> f64| mean(&v.iter().map(|r| f(r)).collect::<Vec<_>>());
    println!(
        "\nmeans (memory-bound):   SP(red) {:.3}  Mem(red) {:.3}  SP(full) {:.3}  Mem(full) {:.3}",
        m(&hot, &|r| r.sp_red),
        m(&hot, &|r| r.sp_mem_red),
        m(&hot, &|r| r.sp_full),
        m(&hot, &|r| r.sp_mem_full)
    );
    println!(
        "means (everything else): SP(red) {:.3}  Mem(red) {:.3}  SP(full) {:.3}  Mem(full) {:.3}",
        m(&cold, &|r| r.sp_red),
        m(&cold, &|r| r.sp_mem_red),
        m(&cold, &|r| r.sp_full),
        m(&cold, &|r| r.sp_mem_full)
    );
    println!("\nThe extension should help (or at least not hurt) the memory-bound set\nwhile leaving the rest unchanged.");
    let path = save_json("ext_memaware", &rows);
    mg_info!("rows written to {}", path.display());
}
