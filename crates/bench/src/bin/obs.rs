//! Observability driver: runs one benchmark with the pipeline observer
//! attached and dumps everything it produced — the trace JSON (under
//! `results/`), a Konata-style text pipeview of the run's tail, the
//! per-slot stall-attribution table, and the queue-occupancy summary.
//!
//! Usage: `obs [BENCH] [SCHEME] [TARGET_DYN] [--export-json]`
//!
//! * `BENCH` — benchmark name from the suite (default `mib_crc32`)
//! * `SCHEME` — scheme display name, e.g. `Struct-All`, `no-minigraphs`,
//!   `Slack-Profile` (default `Struct-All`)
//! * `TARGET_DYN` — dynamic-instruction target (default 30000)
//! * `--export-json` — besides the binary `results/OBS_<bench>.mgb`
//!   record, also write the legacy `results/OBS_<bench>.json` debug
//!   view (pretty-printed, ~50k lines; the binary record is the
//!   canonical artifact)
//!
//! Only built with `--features obs`; without the feature the simulator
//! carries no instrumentation. The process exits non-zero if the stall
//! attribution fails its conservation check (every issue-slot cycle
//! charged exactly once) — CI's `obs-smoke` job relies on this.

#[cfg(feature = "obs")]
fn main() {
    use mg_bench::binfmt::{self, RecordKind};
    use mg_bench::harness::ObsSection;
    use mg_bench::{save_bin, save_json, BenchContext, Scheme, SCHEMA_VERSION};
    use mg_sim::MachineConfig;
    use mg_workloads::suite;

    mg_bench::Config::init_cli();
    let (flags, positional): (Vec<String>, Vec<String>) =
        std::env::args().skip(1).partition(|a| a.starts_with("--"));
    let export_json = flags.iter().any(|f| f == "--export-json");
    if let Some(unknown) = flags.iter().find(|f| *f != "--export-json") {
        eprintln!("unknown flag {unknown:?}; the only flag is --export-json");
        std::process::exit(2);
    }
    let bench = positional
        .first()
        .cloned()
        .unwrap_or_else(|| "mib_crc32".into());
    let scheme_name = positional
        .get(1)
        .cloned()
        .unwrap_or_else(|| "Struct-All".into());
    let target_dyn: usize = positional
        .get(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30_000);

    let Some(mut spec) = suite().into_iter().find(|s| s.name == bench) else {
        eprintln!("unknown benchmark {bench:?}; names look like mib_crc32, spec_mcf");
        std::process::exit(2);
    };
    let Some(scheme) = Scheme::from_name(&scheme_name) else {
        let names: Vec<&str> = Scheme::ALL.iter().map(|s| s.name()).collect();
        eprintln!(
            "unknown scheme {scheme_name:?}; one of: {}",
            names.join(", ")
        );
        std::process::exit(2);
    };
    spec.params.target_dyn = target_dyn;

    let red = MachineConfig::reduced();
    let ctx = match BenchContext::builder(&spec, &red).build() {
        Ok(ctx) => ctx,
        Err(e) => {
            eprintln!("context build failed: {e}");
            std::process::exit(1);
        }
    };
    let (run, report) = match ctx.try_run_obs(scheme, &red, mg_sim::ObsConfig::default()) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("instrumented run failed: {e}");
            std::process::exit(1);
        }
    };

    println!(
        "{} under {}: {} cycles, IPC {:.3}, coverage {:.3}",
        spec.name,
        scheme.name(),
        run.cycles,
        run.ipc,
        run.coverage
    );

    let (lo, hi) = report.tail_window(64);
    println!("\npipeview, cycles [{lo}, {hi}):");
    print!("{}", report.pipeview(lo, hi));
    if report.trace_dropped > 0 {
        println!(
            "({} earlier ops fell out of the {}-entry trace ring)",
            report.trace_dropped,
            report.trace.len()
        );
    }

    println!("\nstall attribution over {} cycles:", report.cycles);
    print!("{}", report.stalls.render());

    let occ = &report.occupancy;
    println!("\noccupancy (mean / p95 / %full):");
    for (name, h) in [
        ("iq", &occ.iq),
        ("rob", &occ.rob),
        ("lq", &occ.lq),
        ("sq", &occ.sq),
    ] {
        println!(
            "  {:<4} {:>7.2} {:>5} {:>6.1}%",
            name,
            h.mean(),
            h.quantile(0.95),
            100.0 * h.frac_full()
        );
    }

    let section = ObsSection::new(&spec.name, scheme, report);
    let name = format!("OBS_{}", spec.name);
    let path = save_bin(&name, RecordKind::ObsDump, &section);
    println!("\ntrace dump written to {}", path.display());
    if export_json {
        let json_path = save_json(&name, &section);
        println!("trace JSON view written to {}", json_path.display());
    }

    // When run from the workspace root (as CI does), validate the dump
    // just written against the checked-in schema — decoded straight
    // from the binary record, so the canonical artifact is what gets
    // checked.
    let schema_path = std::path::Path::new("crates/bench/tests/obs/trace.schema.json");
    if schema_path.exists() {
        let written = std::fs::read(&path).expect("read back trace dump");
        let value = binfmt::open_value(&written, RecordKind::ObsDump, SCHEMA_VERSION)
            .expect("trace dump reopens");
        let schema_text = std::fs::read_to_string(schema_path).expect("read schema");
        let schema = serde_json::parse_value_str(&schema_text).expect("schema parses");
        match mg_obs::schema::validate(&value, &schema) {
            Ok(()) => println!("trace dump validates against {}", schema_path.display()),
            Err(e) => {
                eprintln!("trace dump violates {}: {e}", schema_path.display());
                std::process::exit(1);
            }
        }
    }

    if !section.conservation_ok() {
        eprintln!("stall attribution FAILED conservation: slot counts do not sum to cycles");
        std::process::exit(1);
    }
    println!("stall attribution conserves cycles: ok");
}

#[cfg(not(feature = "obs"))]
fn main() {
    eprintln!("the obs driver needs the observer compiled in: rerun with --features obs");
    std::process::exit(2);
}
