//! Full-suite calibration sweep: every benchmark, every scheme, both
//! machines; prints suite-wide summary statistics against paper targets.
use mg_bench::{mean, BenchContext, Scheme};
use mg_sim::MachineConfig;
use mg_workloads::suite;
use std::time::Instant;

fn main() {
    let take: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(78);
    let base = MachineConfig::baseline();
    let red = MachineConfig::reduced();
    let schemes = [
        Scheme::StructAll, Scheme::StructNone, Scheme::StructBounded,
        Scheme::SlackProfile, Scheme::SlackDynamic,
    ];
    let mut rel_red: Vec<Vec<f64>> = vec![vec![]; schemes.len()];
    let mut rel_full: Vec<Vec<f64>> = vec![vec![]; schemes.len()];
    let mut cov: Vec<Vec<f64>> = vec![vec![]; schemes.len()];
    let mut nomg_red = vec![];
    let mut slower_than_nomg_red = vec![0usize; schemes.len()];
    let mut slowdown_full = vec![0usize; schemes.len()];
    let t0 = Instant::now();
    for (bi, spec) in suite().iter().take(take).enumerate() {
        let ctx = BenchContext::new(spec, &red);
        let b = ctx.run(Scheme::NoMg, &base);
        let r = ctx.run(Scheme::NoMg, &red);
        nomg_red.push(r.ipc / b.ipc);
        for (si, s) in schemes.iter().enumerate() {
            let rr = ctx.run(*s, &red);
            let rf = ctx.run(*s, &base);
            rel_red[si].push(rr.ipc / b.ipc);
            rel_full[si].push(rf.ipc / b.ipc);
            cov[si].push(rr.coverage);
            if rr.ipc < r.ipc { slower_than_nomg_red[si] += 1; }
            if rf.ipc < b.ipc * 0.995 { slowdown_full[si] += 1; }
        }
        if bi % 10 == 0 { eprintln!("[{bi}] {} {:.1}s", spec.name, t0.elapsed().as_secs_f32()); }
    }
    let n = nomg_red.len();
    println!("n={n}  elapsed {:.1}s", t0.elapsed().as_secs_f32());
    println!("no-mg reduced: mean rel {:.3}   (paper 0.82)", mean(&nomg_red));
    println!("{:<16} {:>8} {:>8} {:>8} {:>10} {:>10}", "scheme", "red-rel", "full-rel", "cov", "<nomg(red)", "slow(full)");
    let paper = [("Struct-All", 0.90, 0.38), ("Struct-None", 0.95, 0.20), ("Struct-Bounded", 0.98, 0.30), ("Slack-Profile", 1.02, 0.34), ("Slack-Dynamic", 0.94, 0.30)];
    for (si, s) in schemes.iter().enumerate() {
        println!("{:<16} {:>8.3} {:>8.3} {:>8.3} {:>10} {:>10}   paper: rel {:.2} cov {:.2}",
            s.name(), mean(&rel_red[si]), mean(&rel_full[si]), mean(&cov[si]),
            slower_than_nomg_red[si], slowdown_full[si], paper[si].1, paper[si].2);
    }
}
