//! Full-suite calibration sweep: every benchmark, every scheme, both
//! machines; prints suite-wide summary statistics against paper targets.
use mg_bench::{mean, Scheme, SweepCell, SweepSpec};
use mg_obs::mg_error;
use mg_sim::MachineConfig;
use mg_workloads::suite;
use std::time::Instant;

fn main() {
    let take: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(78);
    let base = MachineConfig::baseline();
    let red = MachineConfig::reduced();
    let schemes = [
        Scheme::StructAll,
        Scheme::StructNone,
        Scheme::StructBounded,
        Scheme::SlackProfile,
        Scheme::SlackDynamic,
    ];
    // Cells: no-mg on both machines, then a (reduced, baseline) pair per
    // scheme at indices (2 + 2*si, 3 + 2*si).
    let mut spec = SweepSpec::new(&red)
        .benches(suite().iter().take(take).cloned())
        .cell(SweepCell::new(Scheme::NoMg, &base))
        .cell(SweepCell::new(Scheme::NoMg, &red));
    for s in schemes {
        spec = spec
            .cell(SweepCell::new(s, &red))
            .cell(SweepCell::new(s, &base));
    }
    let t0 = Instant::now();
    let result = spec.run_cli();
    let mut rel_red: Vec<Vec<f64>> = vec![vec![]; schemes.len()];
    let mut rel_full: Vec<Vec<f64>> = vec![vec![]; schemes.len()];
    let mut cov: Vec<Vec<f64>> = vec![vec![]; schemes.len()];
    let mut nomg_red = vec![];
    let mut slower_than_nomg_red = vec![0usize; schemes.len()];
    let mut slowdown_full = vec![0usize; schemes.len()];
    for bench in &result.rows {
        let ok = match bench.all_ok() {
            Ok(runs) => runs,
            Err(e) => {
                mg_error!("skipped: {e}");
                continue;
            }
        };
        let b = ok[0];
        let r = ok[1];
        nomg_red.push(r.ipc / b.ipc);
        for si in 0..schemes.len() {
            let rr = ok[2 + 2 * si];
            let rf = ok[3 + 2 * si];
            rel_red[si].push(rr.ipc / b.ipc);
            rel_full[si].push(rf.ipc / b.ipc);
            cov[si].push(rr.coverage);
            if rr.ipc < r.ipc {
                slower_than_nomg_red[si] += 1;
            }
            if rf.ipc < b.ipc * 0.995 {
                slowdown_full[si] += 1;
            }
        }
    }
    let n = nomg_red.len();
    println!("n={n}  elapsed {:.1}s", t0.elapsed().as_secs_f32());
    println!(
        "no-mg reduced: mean rel {:.3}   (paper 0.82)",
        mean(&nomg_red)
    );
    println!(
        "{:<16} {:>8} {:>8} {:>8} {:>10} {:>10}",
        "scheme", "red-rel", "full-rel", "cov", "<nomg(red)", "slow(full)"
    );
    let paper = [
        ("Struct-All", 0.90, 0.38),
        ("Struct-None", 0.95, 0.20),
        ("Struct-Bounded", 0.98, 0.30),
        ("Slack-Profile", 1.02, 0.34),
        ("Slack-Dynamic", 0.94, 0.30),
    ];
    for (si, s) in schemes.iter().enumerate() {
        println!(
            "{:<16} {:>8.3} {:>8.3} {:>8.3} {:>10} {:>10}   paper: rel {:.2} cov {:.2}",
            s.name(),
            mean(&rel_red[si]),
            mean(&rel_full[si]),
            mean(&cov[si]),
            slower_than_nomg_red[si],
            slowdown_full[si],
            paper[si].1,
            paper[si].2
        );
    }
}
