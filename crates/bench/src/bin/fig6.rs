//! Figure 6 (and the headline numbers): all five selectors across the
//! full benchmark suite.
//!
//! * Top: performance on the reduced processor, relative to the
//!   fully-provisioned baseline (S-curves).
//! * Middle: performance on the fully-provisioned processor.
//! * Bottom: dynamic coverage.
//!
//! Usage: `fig6 [N]` limits the sweep to the first N benchmarks.

use mg_bench::{mean, s_curve, save_json, BenchContext, Scheme};
use mg_sim::MachineConfig;
use mg_workloads::suite;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    bench: String,
    nomg_red: f64,
    per_scheme: Vec<PerScheme>,
}

#[derive(Serialize)]
struct PerScheme {
    scheme: &'static str,
    rel_red: f64,
    rel_full: f64,
    coverage: f64,
}

const SCHEMES: [Scheme; 5] = [
    Scheme::StructAll,
    Scheme::StructNone,
    Scheme::StructBounded,
    Scheme::SlackProfile,
    Scheme::SlackDynamic,
];

fn main() {
    let take: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(usize::MAX);
    let base = MachineConfig::baseline();
    let red = MachineConfig::reduced();
    let mut rows: Vec<Row> = Vec::new();
    for spec in suite().iter().take(take) {
        let ctx = BenchContext::new(spec, &red);
        let b = ctx.run(Scheme::NoMg, &base);
        let r = ctx.run(Scheme::NoMg, &red);
        let per_scheme = SCHEMES
            .iter()
            .map(|&s| {
                let rr = ctx.run(s, &red);
                let rf = ctx.run(s, &base);
                PerScheme {
                    scheme: s.name(),
                    rel_red: rr.ipc / b.ipc,
                    rel_full: rf.ipc / b.ipc,
                    coverage: rr.coverage,
                }
            })
            .collect();
        rows.push(Row {
            bench: spec.name.clone(),
            nomg_red: r.ipc / b.ipc,
            per_scheme,
        });
        eprint!(".");
    }
    eprintln!();

    for (title, get) in [
        ("TOP: relative performance on the REDUCED processor", 0usize),
        ("MIDDLE: relative performance on the FULL processor", 1),
        ("BOTTOM: dynamic coverage", 2),
    ] {
        println!("\nFIGURE 6 {title}");
        print!("{:>4} {:>9}", "idx", "no-mg");
        for s in SCHEMES {
            print!(" {:>15}", s.name());
        }
        println!();
        // Independent S-curves per scheme, as in the paper.
        let nomg_curve = s_curve(rows.iter().map(|r| (r.bench.clone(), r.nomg_red)).collect());
        let curves: Vec<Vec<(String, f64)>> = (0..SCHEMES.len())
            .map(|si| {
                s_curve(
                    rows.iter()
                        .map(|r| {
                            let v = match get {
                                0 => r.per_scheme[si].rel_red,
                                1 => r.per_scheme[si].rel_full,
                                _ => r.per_scheme[si].coverage,
                            };
                            (r.bench.clone(), v)
                        })
                        .collect(),
                )
            })
            .collect();
        for i in 0..rows.len() {
            print!("{:>4} {:>9.3}", i, if get == 2 { f64::NAN } else { nomg_curve[i].1 });
            for curve in &curves {
                print!(" {:>15.3}", curve[i].1);
            }
            println!();
        }
        print!("mean {:>9.3}", if get == 2 { f64::NAN } else { mean(&nomg_curve.iter().map(|x| x.1).collect::<Vec<_>>()) });
        for curve in &curves {
            let vals: Vec<f64> = curve.iter().map(|x| x.1).collect();
            print!(" {:>15.3}", mean(&vals));
        }
        println!();
    }

    // Headline numbers.
    let nomg_mean = mean(&rows.iter().map(|r| r.nomg_red).collect::<Vec<_>>());
    println!("\nHEADLINES (paper in parentheses)");
    println!("  reduced, no mini-graphs:      {:+.1}%  (-18%)", 100.0 * (nomg_mean - 1.0));
    for (si, s) in SCHEMES.iter().enumerate() {
        let m = mean(&rows.iter().map(|r| r.per_scheme[si].rel_red).collect::<Vec<_>>());
        let c = mean(&rows.iter().map(|r| r.per_scheme[si].coverage).collect::<Vec<_>>());
        let paper = match s {
            Scheme::StructAll => "(-10%, cov 38%)",
            Scheme::StructNone => "(-5%, cov 20%)",
            Scheme::StructBounded => "(-2%, cov 30%)",
            Scheme::SlackProfile => "(+2%, cov 34%)",
            Scheme::SlackDynamic => "(-6%, cov 30%)",
            _ => "",
        };
        println!(
            "  reduced + {:<20} {:+.1}%, cov {:.0}%  {}",
            s.name(),
            100.0 * (m - 1.0),
            100.0 * c,
            paper
        );
    }
    let path = save_json("fig6", &rows);
    eprintln!("rows written to {}", path.display());
}
