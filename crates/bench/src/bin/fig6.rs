//! Figure 6 (and the headline numbers): all five selectors across the
//! full benchmark suite.
//!
//! * Top: performance on the reduced processor, relative to the
//!   fully-provisioned baseline (S-curves).
//! * Middle: performance on the fully-provisioned processor.
//! * Bottom: dynamic coverage.
//!
//! Usage: `fig6 [N]` limits the sweep to the first N benchmarks.

use mg_bench::figures::{fig6_rows, fig6_spec, FIG6_SCHEMES};
use mg_bench::{mean, s_curve, save_json, Scheme};

fn main() {
    let take: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(usize::MAX);
    let result = fig6_spec(take).run_cli();
    let (rows, failures) = fig6_rows(&result);
    for e in &failures {
        eprintln!("skipped: {e}");
    }

    for (title, get) in [
        ("TOP: relative performance on the REDUCED processor", 0usize),
        ("MIDDLE: relative performance on the FULL processor", 1),
        ("BOTTOM: dynamic coverage", 2),
    ] {
        println!("\nFIGURE 6 {title}");
        print!("{:>4} {:>9}", "idx", "no-mg");
        for s in FIG6_SCHEMES {
            print!(" {:>15}", s.name());
        }
        println!();
        // Independent S-curves per scheme, as in the paper.
        let nomg_curve = s_curve(rows.iter().map(|r| (r.bench.clone(), r.nomg_red)).collect());
        let curves: Vec<Vec<(String, f64)>> = (0..FIG6_SCHEMES.len())
            .map(|si| {
                s_curve(
                    rows.iter()
                        .map(|r| {
                            let v = match get {
                                0 => r.per_scheme[si].rel_red,
                                1 => r.per_scheme[si].rel_full,
                                _ => r.per_scheme[si].coverage,
                            };
                            (r.bench.clone(), v)
                        })
                        .collect(),
                )
            })
            .collect();
        for i in 0..rows.len() {
            print!(
                "{:>4} {:>9.3}",
                i,
                if get == 2 { f64::NAN } else { nomg_curve[i].1 }
            );
            for curve in &curves {
                print!(" {:>15.3}", curve[i].1);
            }
            println!();
        }
        print!(
            "mean {:>9.3}",
            if get == 2 {
                f64::NAN
            } else {
                mean(&nomg_curve.iter().map(|x| x.1).collect::<Vec<_>>())
            }
        );
        for curve in &curves {
            let vals: Vec<f64> = curve.iter().map(|x| x.1).collect();
            print!(" {:>15.3}", mean(&vals));
        }
        println!();
    }

    // Headline numbers.
    let nomg_mean = mean(&rows.iter().map(|r| r.nomg_red).collect::<Vec<_>>());
    println!("\nHEADLINES (paper in parentheses)");
    println!(
        "  reduced, no mini-graphs:      {:+.1}%  (-18%)",
        100.0 * (nomg_mean - 1.0)
    );
    for (si, s) in FIG6_SCHEMES.iter().enumerate() {
        let m = mean(
            &rows
                .iter()
                .map(|r| r.per_scheme[si].rel_red)
                .collect::<Vec<_>>(),
        );
        let c = mean(
            &rows
                .iter()
                .map(|r| r.per_scheme[si].coverage)
                .collect::<Vec<_>>(),
        );
        let paper = match s {
            Scheme::StructAll => "(-10%, cov 38%)",
            Scheme::StructNone => "(-5%, cov 20%)",
            Scheme::StructBounded => "(-2%, cov 30%)",
            Scheme::SlackProfile => "(+2%, cov 34%)",
            Scheme::SlackDynamic => "(-6%, cov 30%)",
            _ => "",
        };
        println!(
            "  reduced + {:<20} {:+.1}%, cov {:.0}%  {}",
            s.name(),
            100.0 * (m - 1.0),
            100.0 * c,
            paper
        );
    }
    let path = save_json("fig6", &rows);
    eprintln!("rows written to {}", path.display());
}
