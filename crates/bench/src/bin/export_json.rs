//! Exports any `.mgb` binary record to its JSON debug view.
//!
//! Usage: `export_json FILE.mgb [FILE.mgb ...]`
//!
//! Writes `FILE.json` (pretty-printed) next to each input and prints
//! the pair. The record kind and schema version are taken from the
//! record's own header, so any record — cache entry, journal row, obs
//! dump, span trace — converts without telling the tool what it is.
//! Corrupt records (bad magic, failed checksum, truncation) are
//! reported and exit non-zero; nothing is written for them.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: export_json FILE.mgb [FILE.mgb ...]");
        eprintln!("writes the JSON debug view FILE.json next to each input");
        std::process::exit(2);
    }
    let mut failed = false;
    for arg in &args {
        match export(std::path::Path::new(arg)) {
            Ok(out) => println!("{arg} -> {}", out.display()),
            Err(e) => {
                eprintln!("{arg}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}

fn export(path: &std::path::Path) -> Result<std::path::PathBuf, String> {
    use mg_bench::binfmt;
    let bytes = std::fs::read(path).map_err(|e| format!("read failed: {e}"))?;
    let header = binfmt::peek_header(&bytes).map_err(|e| e.to_string())?;
    let kind = binfmt::RecordKind::from_u16(header.kind)
        .ok_or_else(|| format!("unknown record kind tag {}", header.kind))?;
    let value = binfmt::open_value(&bytes, kind, header.schema).map_err(|e| e.to_string())?;
    let json = serde_json::to_string_pretty(&value).map_err(|e| e.to_string())?;
    let out = path.with_extension("json");
    std::fs::write(&out, json).map_err(|e| format!("write failed: {e}"))?;
    Ok(out)
}
