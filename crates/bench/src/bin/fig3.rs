//! Figure 3: the naive structural selectors.
//!
//! Top: `Struct-All` and `Struct-None` on the reduced processor (relative
//! to the full baseline). Bottom: the same mini-graphs on the fully
//! provisioned processor, where serialization penalties are exposed.
//! Also reports the pathology counts the paper calls out.
//!
//! Usage: `fig3 [N]` limits the sweep to the first N benchmarks.

use mg_bench::{mean, s_curve, save_json, Scheme, SweepCell, SweepSpec};
use mg_sim::MachineConfig;
use mg_workloads::suite;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    bench: String,
    nomg_red: f64,
    sa_red: f64,
    sn_red: f64,
    sa_full: f64,
    sn_full: f64,
    sa_cov: f64,
    sn_cov: f64,
}

fn main() {
    let take: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(usize::MAX);
    let base = MachineConfig::baseline();
    let red = MachineConfig::reduced();
    let result = SweepSpec::new(&red)
        .benches(suite().iter().take(take).cloned())
        .cell(SweepCell::new(Scheme::NoMg, &base))
        .cell(SweepCell::new(Scheme::NoMg, &red))
        .cell(SweepCell::new(Scheme::StructAll, &red))
        .cell(SweepCell::new(Scheme::StructNone, &red))
        .cell(SweepCell::new(Scheme::StructAll, &base))
        .cell(SweepCell::new(Scheme::StructNone, &base))
        .run_cli();
    let mut rows = Vec::new();
    for bench in &result.rows {
        let ok = match bench.all_ok() {
            Ok(runs) => runs,
            Err(e) => {
                eprintln!("skipped: {e}");
                continue;
            }
        };
        let b = ok[0];
        rows.push(Row {
            bench: bench.bench.clone(),
            nomg_red: ok[1].ipc / b.ipc,
            sa_red: ok[2].ipc / b.ipc,
            sn_red: ok[3].ipc / b.ipc,
            sa_full: ok[4].ipc / b.ipc,
            sn_full: ok[5].ipc / b.ipc,
            sa_cov: ok[2].coverage,
            sn_cov: ok[3].coverage,
        });
    }

    let curve = |f: &dyn Fn(&Row) -> f64| -> Vec<f64> {
        s_curve(rows.iter().map(|r| (r.bench.clone(), f(r))).collect())
            .into_iter()
            .map(|(_, v)| v)
            .collect()
    };
    let tops = [
        ("no-mg", curve(&|r| r.nomg_red)),
        ("Struct-All", curve(&|r| r.sa_red)),
        ("Struct-None", curve(&|r| r.sn_red)),
    ];
    println!("FIGURE 3 TOP: performance on the reduced processor");
    println!(
        "{:>4} {:>10} {:>12} {:>12}",
        "idx", "no-mg", "Struct-All", "Struct-None"
    );
    for i in 0..rows.len() {
        println!(
            "{:>4} {:>10.3} {:>12.3} {:>12.3}",
            i, tops[0].1[i], tops[1].1[i], tops[2].1[i]
        );
    }
    for (name, c) in &tops {
        println!("mean {name:<14} {:.3}", mean(c));
    }

    let bots = [
        ("Struct-All", curve(&|r| r.sa_full)),
        ("Struct-None", curve(&|r| r.sn_full)),
    ];
    println!("\nFIGURE 3 BOTTOM: performance on the fully-provisioned processor");
    println!("{:>4} {:>12} {:>12}", "idx", "Struct-All", "Struct-None");
    for i in 0..rows.len() {
        println!("{:>4} {:>12.3} {:>12.3}", i, bots[0].1[i], bots[1].1[i]);
    }

    // The paper's analysis points.
    let sa_worse_than_nomg = rows.iter().filter(|r| r.sa_red < r.nomg_red).count();
    let sa_degrading_full = rows.iter().filter(|r| r.sa_full < 0.995).count();
    let sn_worse_than_nomg = rows.iter().filter(|r| r.sn_red < r.nomg_red).count();
    let crossover = rows.iter().filter(|r| r.sa_red > r.sn_red).count();
    println!("\nANALYSIS (paper in parentheses)");
    println!(
        "  Struct-All coverage:  {:.0}%  (38%, range 18-60%)",
        100.0 * mean(&rows.iter().map(|r| r.sa_cov).collect::<Vec<_>>())
    );
    println!(
        "  Struct-None coverage: {:.0}%  (20%, range 6-38%)",
        100.0 * mean(&rows.iter().map(|r| r.sn_cov).collect::<Vec<_>>())
    );
    println!("  SA below no-mg on reduced:   {sa_worse_than_nomg} programs (7)");
    println!("  SA degrading on full:        {sa_degrading_full} programs (29)");
    println!("  SN below no-mg on reduced:   {sn_worse_than_nomg} programs (0)");
    println!(
        "  SA beats SN on reduced for:  {crossover} of {} programs (about half)",
        rows.len()
    );
    let path = save_json("fig3", &rows);
    eprintln!("rows written to {}", path.display());
}
