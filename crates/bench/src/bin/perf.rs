//! Engine-throughput harness: measures simulator cycles/second on the
//! fig1 reduced-machine sweep and writes `results/BENCH_engine.json`,
//! the repo's performance-trajectory record (uploaded as a CI artifact).
//!
//! Usage: `perf [N] [TARGET_DYN]` — sweep the first `N` benchmarks
//! (default: all 78) truncated to `TARGET_DYN` dynamic instructions
//! (default: 30000).
//!
//! Per (scheme, machine) cell, every benchmark's simulation input is
//! prepared once ([`mg_bench::harness::PreparedSim`]) and `simulate` is
//! then timed in isolation over `REPEATS` passes, keeping the best
//! (least-noisy) pass. Selection, rewriting, and functional execution
//! are excluded from the timed region — this harness tracks the engine
//! hot loop, nothing else.
//!
//! With `--features alloc-count`, a counting global allocator also
//! reports steady-state heap allocations per simulated cycle, measured
//! as the allocation-count *slope* between a short and a long run of the
//! same benchmark (setup allocations cancel out).
//!
//! With `--features obs`, one benchmark is additionally timed with the
//! pipeline observer attached vs. detached, recording the observer's
//! run-time overhead ratio (and checking stall-attribution
//! conservation) in the report's `obs` section.

use mg_bench::harness::PreparedSim;
use mg_bench::{machine_fingerprint, BenchContext, Scheme, SCHEMA_VERSION};
use mg_sim::MachineConfig;
use mg_workloads::suite;
use serde::Serialize;
use std::time::Instant;

const REPEATS: usize = 3;

#[cfg(feature = "alloc-count")]
mod alloc_count {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    pub static ALLOCS: AtomicU64 = AtomicU64::new(0);

    /// System allocator wrapper that counts allocation events (alloc and
    /// grow-realloc; frees are not events of interest).
    pub struct Counting;

    unsafe impl GlobalAlloc for Counting {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.alloc(layout)
        }
        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }
        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.realloc(ptr, layout, new_size)
        }
    }

    #[global_allocator]
    static COUNTER: Counting = Counting;

    pub fn allocs() -> u64 {
        ALLOCS.load(Ordering::Relaxed)
    }
}

#[derive(Serialize)]
struct CellPerf {
    scheme: String,
    machine: String,
    benches: usize,
    sim_cycles: u64,
    wall_sec: f64,
    cycles_per_sec: f64,
}

#[derive(Serialize)]
struct AllocPerf {
    bench: String,
    short_cycles: u64,
    long_cycles: u64,
    short_allocs: u64,
    long_allocs: u64,
    /// Allocation events per extra simulated cycle between the short and
    /// long run — ~0 means the steady-state loop is allocation-free.
    steady_allocs_per_cycle: f64,
}

#[derive(Serialize)]
struct ObsPerf {
    bench: String,
    cycles: u64,
    plain_wall_sec: f64,
    observed_wall_sec: f64,
    /// Observed wall over plain wall: the run-time price of attaching
    /// the observer (the compile-it-out price is zero by construction).
    overhead_ratio: f64,
    conservation_ok: bool,
}

#[derive(Serialize)]
struct PerfReport {
    schema_version: u32,
    machine_fingerprint: String,
    benches: usize,
    target_dyn: usize,
    repeats: usize,
    cells: Vec<CellPerf>,
    total_sim_cycles: u64,
    total_wall_sec: f64,
    sim_cycles_per_sec: f64,
    alloc: Option<AllocPerf>,
    obs: Option<ObsPerf>,
}

fn cell_tags() -> Vec<(Scheme, &'static str)> {
    vec![
        (Scheme::NoMg, "base"),
        (Scheme::NoMg, "red"),
        (Scheme::StructAll, "red"),
        (Scheme::StructNone, "red"),
        (Scheme::SlackProfile, "red"),
    ]
}

fn prepare_all(take: usize, target_dyn: usize) -> Vec<(String, Vec<PreparedSim>)> {
    let base = MachineConfig::baseline();
    let red = MachineConfig::reduced();
    suite()
        .into_iter()
        .take(take)
        .filter_map(|mut spec| {
            spec.params.target_dyn = target_dyn;
            let ctx = match BenchContext::builder(&spec, &red).disk_cache(false).build() {
                Ok(ctx) => ctx,
                Err(e) => {
                    eprintln!("skipped {}: {e}", spec.name);
                    return None;
                }
            };
            let mut sims = Vec::new();
            for (scheme, tag) in cell_tags() {
                let machine = if tag == "base" { &base } else { &red };
                match ctx.prepare_sim(scheme, machine, None, None) {
                    Ok(p) => sims.push(p),
                    Err(e) => {
                        eprintln!("skipped {} cell {}/{tag}: {e}", spec.name, scheme.name());
                        return None;
                    }
                }
            }
            Some((spec.name.clone(), sims))
        })
        .collect()
}

/// Times one full pass of `sims` (every benchmark under one cell index),
/// returning (total simulated cycles, wall seconds).
fn time_cell(prepared: &[(String, Vec<PreparedSim>)], cell: usize) -> (u64, f64) {
    let mut best_wall = f64::INFINITY;
    let mut cycles = 0u64;
    for _ in 0..REPEATS {
        let t0 = Instant::now();
        let mut pass_cycles = 0u64;
        for (_, sims) in prepared {
            let r = sims[cell].simulate();
            pass_cycles += r.stats.cycles;
        }
        let wall = t0.elapsed().as_secs_f64();
        cycles = pass_cycles;
        if wall < best_wall {
            best_wall = wall;
        }
    }
    (cycles, best_wall)
}

#[cfg(feature = "alloc-count")]
fn alloc_profile(target_dyn: usize) -> Option<AllocPerf> {
    // One benchmark, two trace lengths: the allocation-count slope
    // between them is the steady-state allocations per simulated cycle.
    let red = MachineConfig::reduced();
    let mut short_spec = suite().into_iter().find(|s| s.name == "mib_crc32")?;
    let mut long_spec = short_spec.clone();
    short_spec.params.target_dyn = target_dyn;
    long_spec.params.target_dyn = target_dyn * 4;
    let measure = |spec: &mg_workloads::BenchmarkSpec| -> Option<(u64, u64)> {
        let ctx = BenchContext::builder(spec, &red)
            .cache(false)
            .build()
            .ok()?;
        let p = ctx.prepare_sim(Scheme::StructAll, &red, None, None).ok()?;
        p.simulate(); // warm: fault in lazily-allocated structures
        let a0 = alloc_count::allocs();
        let r = p.simulate();
        let a1 = alloc_count::allocs();
        Some((r.stats.cycles, a1 - a0))
    };
    let (short_cycles, short_allocs) = measure(&short_spec)?;
    let (long_cycles, long_allocs) = measure(&long_spec)?;
    let dc = long_cycles.saturating_sub(short_cycles).max(1);
    let da = long_allocs.saturating_sub(short_allocs);
    Some(AllocPerf {
        bench: short_spec.name,
        short_cycles,
        long_cycles,
        short_allocs,
        long_allocs,
        steady_allocs_per_cycle: da as f64 / dc as f64,
    })
}

#[cfg(not(feature = "alloc-count"))]
fn alloc_profile(_target_dyn: usize) -> Option<AllocPerf> {
    None
}

/// Times one benchmark with and without the pipeline observer attached:
/// the ratio is the run-time cost of observing (the cost with the `obs`
/// feature off is zero — the hooks compile away).
#[cfg(feature = "obs")]
fn obs_profile(target_dyn: usize) -> Option<ObsPerf> {
    let red = MachineConfig::reduced();
    let mut spec = suite().into_iter().find(|s| s.name == "mib_crc32")?;
    spec.params.target_dyn = target_dyn;
    let ctx = BenchContext::builder(&spec, &red)
        .cache(false)
        .build()
        .ok()?;
    let plain = ctx.prepare_sim(Scheme::StructAll, &red, None, None).ok()?;
    let mut observed = plain.clone();
    observed.opts.obs = Some(mg_sim::ObsConfig::default());
    let best = |p: &PreparedSim| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..REPEATS {
            let t0 = Instant::now();
            p.simulate();
            best = best.min(t0.elapsed().as_secs_f64());
        }
        best
    };
    let plain_wall_sec = best(&plain);
    let observed_wall_sec = best(&observed);
    let r = observed.simulate();
    let report = r.obs.as_ref()?;
    Some(ObsPerf {
        bench: spec.name,
        cycles: r.stats.cycles,
        plain_wall_sec,
        observed_wall_sec,
        overhead_ratio: observed_wall_sec / plain_wall_sec.max(1e-12),
        conservation_ok: report.conservation_ok(),
    })
}

#[cfg(not(feature = "obs"))]
fn obs_profile(_target_dyn: usize) -> Option<ObsPerf> {
    None
}

fn main() {
    mg_bench::Config::init_cli();
    let take: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(usize::MAX);
    let target_dyn: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30_000);

    eprintln!("preparing sweep inputs…");
    let prepared = prepare_all(take, target_dyn);
    assert!(!prepared.is_empty(), "no benchmarks prepared");

    let mut cells = Vec::new();
    let mut total_cycles = 0u64;
    let mut total_wall = 0.0f64;
    for (i, (scheme, tag)) in cell_tags().into_iter().enumerate() {
        let (cycles, wall) = time_cell(&prepared, i);
        eprintln!(
            "{:<16} {:<5} {:>12} cycles  {:>8.3}s  {:>12.0} cyc/s",
            scheme.name(),
            tag,
            cycles,
            wall,
            cycles as f64 / wall
        );
        total_cycles += cycles;
        total_wall += wall;
        cells.push(CellPerf {
            scheme: scheme.name().to_string(),
            machine: tag.to_string(),
            benches: prepared.len(),
            sim_cycles: cycles,
            wall_sec: wall,
            cycles_per_sec: cycles as f64 / wall,
        });
    }

    let alloc = alloc_profile(10_000);
    if let Some(a) = &alloc {
        eprintln!(
            "steady-state allocations/cycle on {}: {:.4} ({} allocs over {} extra cycles)",
            a.bench,
            a.steady_allocs_per_cycle,
            a.long_allocs.saturating_sub(a.short_allocs),
            a.long_cycles.saturating_sub(a.short_cycles),
        );
    }

    let obs = obs_profile(target_dyn);
    if let Some(o) = &obs {
        eprintln!(
            "observer overhead on {}: {:.2}x ({:.3}s observed vs {:.3}s plain, conservation {})",
            o.bench,
            o.overhead_ratio,
            o.observed_wall_sec,
            o.plain_wall_sec,
            if o.conservation_ok { "ok" } else { "VIOLATED" },
        );
    }

    let report = PerfReport {
        schema_version: SCHEMA_VERSION,
        machine_fingerprint: machine_fingerprint(),
        benches: prepared.len(),
        target_dyn,
        repeats: REPEATS,
        cells,
        total_sim_cycles: total_cycles,
        total_wall_sec: total_wall,
        sim_cycles_per_sec: total_cycles as f64 / total_wall,
        alloc,
        obs,
    };
    println!(
        "TOTAL: {} simulated cycles in {:.3}s = {:.0} sim-cycles/sec",
        report.total_sim_cycles, report.total_wall_sec, report.sim_cycles_per_sec
    );
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join("BENCH_engine.json");
    let json = serde_json::to_string_pretty(&report).expect("serialize perf report");
    std::fs::write(&path, json).expect("write BENCH_engine.json");
    eprintln!("report written to {}", path.display());
}
