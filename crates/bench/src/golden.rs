//! Golden-stats digests of the timing engine.
//!
//! The engine's scheduling core is performance-critical and gets
//! rewritten; the contract is that refactors are *behaviour-preserving*.
//! This module renders the engine's observable outputs — every
//! [`SimStats`] field, derived IPC bit patterns, and fig1-style JSON rows
//! — into a deterministic digest over the full 78-benchmark suite, which
//! is compared byte-for-byte against a committed snapshot produced by the
//! pre-refactor engine (`crates/bench/tests/golden/engine_stats.json`,
//! regenerated with `MG_GOLDEN_REGEN=1 cargo test -p mg-bench --test
//! golden`).
//!
//! Floats are pinned by bit pattern (`f64::to_bits`, rendered as hex), so
//! a digest match implies bit-identical arithmetic, not just equal
//! formatting.

use crate::cache::stable_hash64;
use crate::harness::{BenchContext, Scheme};
use crate::runner::par_map;
use mg_sim::MachineConfig;
use mg_workloads::suite;
use serde::{Deserialize, Serialize};

/// The dynamic-length target the golden suite truncates every benchmark
/// to. Small enough that all 78 benchmarks × 6 cells run in test time,
/// large enough that every engine feature (squashes, forwarding, handle
/// issue, dynamic disabling) is exercised on real workloads.
pub const GOLDEN_TARGET_DYN: usize = 6_000;

/// One (scheme, machine) cell's digest.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct GoldenCell {
    /// Scheme display name.
    pub scheme: String,
    /// Machine tag (`base` / `red`).
    pub machine: String,
    /// Full `SimStats` Debug rendering, or `ERROR: …` for a failed cell.
    pub stats: String,
    /// `SimResult::ipc()` bit pattern in hex (zero for failed cells).
    pub ipc_bits: String,
}

/// Everything the engine produced for one benchmark.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct GoldenRow {
    /// Benchmark name.
    pub bench: String,
    /// FNV-1a hash of the per-static frequency profile, in hex.
    pub freqs_hash: String,
    /// FNV-1a hash of the slack profile's Debug rendering, in hex — pins
    /// the `profile_slack` engine path.
    pub slack_hash: String,
    /// Per-cell digests in fixed cell order.
    pub cells: Vec<GoldenCell>,
    /// The benchmark's fig1 row (IPC ratios vs. the baseline machine)
    /// serialized exactly as `fig1` writes it, or `ERROR: …`.
    pub fig1_json: String,
}

/// Fig1-row shape, duplicated here so the golden digest pins the JSON
/// encoding the figure binaries emit.
#[derive(Serialize)]
struct Fig1Row {
    bench: String,
    nomg: f64,
    struct_all: f64,
    struct_none: f64,
    slack_profile: f64,
}

/// The golden cell list: the fig1 sweep (NoMg on both machines plus the
/// three selectors on the reduced machine) and Slack-Dynamic, which
/// exercises the run-time disabling machinery.
fn cell_schemes() -> Vec<(Scheme, &'static str)> {
    vec![
        (Scheme::NoMg, "base"),
        (Scheme::NoMg, "red"),
        (Scheme::StructAll, "red"),
        (Scheme::StructNone, "red"),
        (Scheme::SlackProfile, "red"),
        (Scheme::SlackDynamic, "red"),
    ]
}

/// Computes the digest of one benchmark.
fn golden_row(spec: &mg_workloads::BenchmarkSpec) -> GoldenRow {
    let base = MachineConfig::baseline();
    let red = MachineConfig::reduced();
    let mut spec = spec.clone();
    spec.params.target_dyn = GOLDEN_TARGET_DYN;
    let ctx = match BenchContext::builder(&spec, &red).cache(false).build() {
        Ok(ctx) => ctx,
        Err(e) => {
            return GoldenRow {
                bench: spec.name.clone(),
                freqs_hash: String::new(),
                slack_hash: String::new(),
                cells: Vec::new(),
                fig1_json: format!("ERROR: {e}"),
            }
        }
    };
    let freqs_hash = {
        let mut bytes = Vec::with_capacity(ctx.freqs.len() * 8);
        for f in &ctx.freqs {
            bytes.extend_from_slice(&f.to_le_bytes());
        }
        format!("{:016x}", stable_hash64(&bytes))
    };
    let slack_hash = format!(
        "{:016x}",
        stable_hash64(format!("{:?}", ctx.slack).as_bytes())
    );
    let mut cells = Vec::new();
    let mut ipcs = Vec::new();
    for (scheme, machine_tag) in cell_schemes() {
        let machine = if machine_tag == "base" { &base } else { &red };
        match ctx.try_sim_with(scheme, machine, None, None) {
            Ok((r, _)) => {
                let ipc = r.ipc();
                ipcs.push(if r.hit_cycle_cap { None } else { Some(ipc) });
                cells.push(GoldenCell {
                    scheme: scheme.name().to_string(),
                    machine: machine_tag.to_string(),
                    stats: if r.hit_cycle_cap {
                        format!("CYCLE-CAP: {:?}", r.stats)
                    } else {
                        format!("{:?}", r.stats)
                    },
                    ipc_bits: format!("{:016x}", ipc.to_bits()),
                });
            }
            Err(e) => {
                ipcs.push(None);
                cells.push(GoldenCell {
                    scheme: scheme.name().to_string(),
                    machine: machine_tag.to_string(),
                    stats: format!("ERROR: {e}"),
                    ipc_bits: format!("{:016x}", 0u64),
                });
            }
        }
    }
    // Fig1 ratios need the first five cells (NoMg/base is the divisor).
    let fig1_json = match (ipcs[0], ipcs[1], ipcs[2], ipcs[3], ipcs[4]) {
        (Some(b), Some(n), Some(sa), Some(sn), Some(sp)) => {
            let row = Fig1Row {
                bench: spec.name.clone(),
                nomg: n / b,
                struct_all: sa / b,
                struct_none: sn / b,
                slack_profile: sp / b,
            };
            serde_json::to_string(&row).expect("fig1 row serializes")
        }
        _ => "ERROR: cell failed".to_string(),
    };
    GoldenRow {
        bench: spec.name.clone(),
        freqs_hash,
        slack_hash,
        cells,
        fig1_json,
    }
}

/// Computes golden rows for the full suite (all 78 benchmarks), in suite
/// order, on `jobs` workers. Row contents are independent of the worker
/// count.
pub fn golden_suite(jobs: usize) -> Vec<GoldenRow> {
    let specs = suite();
    par_map(&specs, jobs, |_, spec| golden_row(spec))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_row_is_deterministic() {
        let spec = suite()
            .into_iter()
            .find(|s| s.name == "mib_crc32")
            .expect("registry entry");
        let a = golden_row(&spec);
        let b = golden_row(&spec);
        assert_eq!(a, b);
        assert_eq!(a.cells.len(), cell_schemes().len());
        assert!(a.cells.iter().all(|c| !c.stats.starts_with("ERROR")));
        assert!(a.fig1_json.contains("\"bench\":\"mib_crc32\""));
    }
}
