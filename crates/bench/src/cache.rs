//! Content-keyed cache for expensive per-benchmark artifacts.
//!
//! Building a [`crate::BenchContext`] is the hot path of every sweep: it
//! generates the train and run workloads, executes both functionally, and
//! runs a full slack-profiling timing simulation. The artifacts depend
//! only on (benchmark, generation parameters, train input, run input,
//! train machine config), so they are cached behind a stable content key:
//!
//! * **in memory** (process-wide, shared by all sweep workers), holding
//!   the complete [`ContextArtifacts`];
//! * **on disk** under `results/cache/`, holding the *timing-derived*
//!   half (execution frequencies and the slack profile). The run-input
//!   workload and committed trace are deterministic and cheap to
//!   regenerate functionally, and serializing 100k-instruction traces
//!   would bloat the cache two orders of magnitude for little gain, so a
//!   disk hit replays only the functional run, skipping the profiling
//!   simulation that dominates context construction.
//!
//! Disk entries are versioned ([`CACHE_SCHEMA`]) and integrity-checked:
//! each `ctx-*.mgb` file is a [`crate::binfmt`] binary record (magic +
//! schema header, FNV-1a trailer), verified end-to-end on load. Entries
//! written by the previous, JSON-era generation (`ctx-*.json`, a
//! checksummed [`DiskRecord`] envelope) are still read transparently
//! for one schema generation and rewritten in the binary format on
//! their first hit. A mismatched schema or kind is stale and silently
//! treated as a miss; a corrupt or truncated entry (checksum/decode
//! failure) is *quarantined* to `results/cache/quarantine/` with an
//! `MG_LOG` warning so it never surfaces as a deserialize error and the
//! evidence survives for inspection. Cache I/O is best-effort — a
//! read-only or missing `results/` directory degrades to the in-memory
//! layer — but no longer *silently* so: failed writes are logged via
//! `mg_error!` and counted (`mg_cache_write_errors_total`), because a
//! swallowed serialization or I/O failure otherwise looks identical to
//! a cache miss forever.

use crate::binfmt::{self, RecordKind};
use crate::fault;
use crate::harness::BenchError;
use mg_core::pipeline::try_profile_workload;
use mg_obs::{mg_error, mg_info};
use mg_sim::{MachineConfig, SlackProfile};
use mg_workloads::{BenchmarkSpec, Executor, InputSet, Trace, Workload};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Version tag for on-disk cache entries. Bump when the cached payload or
/// its semantics change; stale entries are then ignored.
///
/// v2: entries are wrapped in a checksummed envelope. The payload shape
/// is unchanged across the JSON-era [`DiskRecord`] envelope and the
/// current [`crate::binfmt`] container, so v2 JSON entries remain
/// readable (for one generation) alongside v2 binary entries.
pub const CACHE_SCHEMA: u32 = 2;

/// Directory holding on-disk context cache entries, relative to the
/// working directory (the workspace root for `cargo run`).
pub const CACHE_DIR: &str = "results/cache";

/// Subdirectory of [`CACHE_DIR`] where corrupt entries are moved on
/// load failure, preserving the evidence without blocking the sweep.
pub const QUARANTINE_DIR: &str = "results/cache/quarantine";

/// Maximum number of quarantined entries kept; older ones are deleted
/// so a recurring corruption source cannot grow the directory unbounded.
const QUARANTINE_KEEP: usize = 32;

/// Default on-disk cache size cap in megabytes. Generous for the full
/// suite (an entry is a few hundred KB) while keeping long-lived working
/// trees from accumulating stale keys without bound.
pub const DEFAULT_CACHE_MAX_MB: u64 = 256;

/// Everything expensive a [`crate::BenchContext`] needs: the run-input
/// workload, its committed trace, and the train-input execution
/// frequencies and slack profile.
#[derive(Clone, Debug)]
pub struct ContextArtifacts {
    /// Workload generated on the run input.
    pub workload: Workload,
    /// Committed-path trace of the run workload.
    pub trace: Trace,
    /// Per-static execution frequencies from the training run.
    pub freqs: Vec<u64>,
    /// Local slack profile trained on the train config.
    pub slack: SlackProfile,
}

/// How a single context request was served, for per-benchmark reporting
/// in sweep summaries (the process-wide [`CacheCounters`] only aggregate).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from the in-memory layer: no work at all.
    MemHit,
    /// Served from a disk entry: functional replay only.
    DiskHit,
    /// Full rebuild including the profiling simulation.
    Miss,
}

impl CacheOutcome {
    /// Short human-readable tag (`mem` / `disk` / `miss`).
    pub fn tag(&self) -> &'static str {
        match self {
            CacheOutcome::MemHit => "mem",
            CacheOutcome::DiskHit => "disk",
            CacheOutcome::Miss => "miss",
        }
    }

    /// Inverse of [`CacheOutcome::tag`], used by the sweep journal to
    /// replay the outcome recorded for a finished row.
    pub fn from_tag(tag: &str) -> Option<CacheOutcome> {
        match tag {
            "mem" => Some(CacheOutcome::MemHit),
            "disk" => Some(CacheOutcome::DiskHit),
            "miss" => Some(CacheOutcome::Miss),
            _ => None,
        }
    }
}

/// Snapshot of the process-wide cache counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Context requests served from the in-memory layer.
    pub mem_hits: u64,
    /// Context requests served from a disk entry (functional replay only).
    pub disk_hits: u64,
    /// Context requests that rebuilt everything.
    pub misses: u64,
}

impl CacheCounters {
    /// Total context requests observed.
    pub fn total(&self) -> u64 {
        self.mem_hits + self.disk_hits + self.misses
    }

    /// Counter-wise difference (`self - earlier`), for per-sweep deltas.
    pub fn since(&self, earlier: &CacheCounters) -> CacheCounters {
        CacheCounters {
            mem_hits: self.mem_hits - earlier.mem_hits,
            disk_hits: self.disk_hits - earlier.disk_hits,
            misses: self.misses - earlier.misses,
        }
    }
}

static MEM: OnceLock<Mutex<HashMap<u64, Arc<ContextArtifacts>>>> = OnceLock::new();
static MEM_HITS: AtomicU64 = AtomicU64::new(0);
static DISK_HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

fn mem() -> &'static Mutex<HashMap<u64, Arc<ContextArtifacts>>> {
    MEM.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Drops every in-memory context entry. Disk entries and the counters
/// are untouched: the next request for a dropped key is a disk hit (or
/// a miss). For long-lived processes under memory pressure, and for
/// tests that need to force the disk path.
pub fn clear_memory() {
    mem().lock().expect("context cache lock").clear();
}

/// Reads the process-wide cache counters.
pub fn counters() -> CacheCounters {
    CacheCounters {
        mem_hits: MEM_HITS.load(Ordering::Relaxed),
        disk_hits: DISK_HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
    }
}

/// FNV-1a over a byte string: the stable content hash behind cache keys
/// and the results-file machine fingerprint.
pub fn stable_hash64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The stable content key of a context: benchmark name *and* generation
/// parameters (specs can be locally modified, e.g. the limit study), both
/// input sets, and the training machine configuration. `Debug` formatting
/// of these plain-data configs is deterministic, and any change to their
/// shape conservatively invalidates old entries.
fn context_key(
    spec: &BenchmarkSpec,
    train_cfg: &MachineConfig,
    train_input: &InputSet,
    run_input: &InputSet,
) -> u64 {
    let repr = format!(
        "v{}|{}|{:?}|{:?}|{:?}|{:?}",
        CACHE_SCHEMA, spec.name, spec.params, train_input, run_input, train_cfg
    );
    stable_hash64(repr.as_bytes())
}

/// On-disk cache entry: the timing-derived artifacts plus enough context
/// to validate the hit.
#[derive(Serialize, Deserialize)]
struct DiskEntry {
    schema_version: u32,
    bench: String,
    freqs: Vec<u64>,
    slack: SlackProfile,
}

/// The checksummed envelope a *legacy* (JSON-era) cache file holds.
/// `payload` is the [`DiskEntry`] JSON *as a string*, so the checksum is
/// over exact bytes and never depends on re-serialization being
/// canonical. Kept for one schema generation so existing caches and
/// journals migrate transparently; new records are [`crate::binfmt`]
/// containers.
#[derive(Serialize, Deserialize)]
struct DiskRecord {
    /// FNV-1a of `payload`'s UTF-8 bytes, in zero-padded hex.
    checksum: String,
    payload: String,
}

/// Wraps serialized payload bytes in the legacy checksummed JSON
/// envelope. Exposed (hidden) so the mixed-directory tests and the
/// format benchmark can fabricate JSON-era records; production code
/// only ever *reads* this envelope now.
#[doc(hidden)]
pub fn seal_record(payload: String) -> Option<Vec<u8>> {
    let record = DiskRecord {
        checksum: format!("{:016x}", stable_hash64(payload.as_bytes())),
        payload,
    };
    serde_json::to_vec(&record).ok()
}

/// Parses and verifies a legacy [`DiskRecord`], returning the payload
/// string. `None` means the bytes are corrupt or truncated (parse or
/// checksum failure) — not merely stale.
#[doc(hidden)]
pub fn open_record(bytes: &[u8]) -> Option<String> {
    let record: DiskRecord = serde_json::from_slice(bytes).ok()?;
    let sum = format!("{:016x}", stable_hash64(record.payload.as_bytes()));
    (sum == record.checksum).then_some(record.payload)
}

fn disk_path_in(dir: &std::path::Path, key: u64) -> PathBuf {
    dir.join(format!("ctx-{key:016x}.{}", binfmt::EXT))
}

fn legacy_disk_path_in(dir: &std::path::Path, key: u64) -> PathBuf {
    dir.join(format!("ctx-{key:016x}.json"))
}

/// Moves a corrupt record into `quarantine_dir` (best-effort), warns
/// through the leveled logger, and bumps `counter`. Keeps at most
/// [`QUARANTINE_KEEP`] quarantined files, deleting the oldest beyond
/// that. Shared by the cache and the sweep journal, so every corrupt
/// persisted record lands in a quarantine directory instead of being
/// silently dropped.
pub(crate) fn quarantine_into(
    quarantine_dir: &std::path::Path,
    path: &std::path::Path,
    why: &str,
    counter: &'static str,
) {
    mg_obs::telemetry::counter(counter).inc();
    let moved = std::fs::create_dir_all(quarantine_dir).is_ok()
        && path
            .file_name()
            .map(|name| {
                // Never overwrite an earlier sample of the same record:
                // uniquify the destination if the name is taken.
                let mut dest = quarantine_dir.join(name);
                let mut tag = 0u32;
                while dest.exists() && tag < 100 {
                    tag += 1;
                    dest = quarantine_dir.join(format!("{}.{tag}", name.to_string_lossy()));
                }
                std::fs::rename(path, dest).is_ok()
            })
            .unwrap_or(false);
    if !moved {
        let _ = std::fs::remove_file(path);
    }
    mg_error!(
        "quarantined corrupt record {} ({why}); treating as absent",
        path.display()
    );
    // Bound the quarantine: drop the oldest files beyond the cap.
    let Ok(listing) = std::fs::read_dir(quarantine_dir) else {
        return;
    };
    let mut entries: Vec<(std::time::SystemTime, PathBuf)> = listing
        .flatten()
        .filter_map(|e| {
            let meta = e.metadata().ok()?;
            meta.is_file().then_some((meta.modified().ok()?, e.path()))
        })
        .collect();
    if entries.len() > QUARANTINE_KEEP {
        entries.sort();
        for (_, old) in &entries[..entries.len() - QUARANTINE_KEEP] {
            let _ = std::fs::remove_file(old);
        }
    }
}

fn quarantine(dir: &std::path::Path, path: &std::path::Path, why: &str) {
    quarantine_into(
        &dir.join("quarantine"),
        path,
        why,
        "mg_cache_quarantined_total",
    );
}

/// Validates a decoded entry against the request; stale entries (other
/// schema generation or bench) miss without quarantine.
fn validate_entry(entry: DiskEntry, spec: &BenchmarkSpec) -> Option<(Vec<u64>, SlackProfile)> {
    (entry.schema_version == CACHE_SCHEMA && entry.bench == spec.name)
        .then_some((entry.freqs, entry.slack))
}

/// LRU touch: freshen the entry's mtime so hot entries survive size-cap
/// eviction. Best-effort, like all disk-layer reads.
fn touch(path: &std::path::Path) {
    if let Ok(f) = std::fs::File::options().append(true).open(path) {
        let _ = f.set_modified(std::time::SystemTime::now());
    }
}

/// Loads one disk entry from `dir` (binary first, then the legacy
/// JSON fallback). Hidden from docs: the supported surface is
/// [`context`]; this is exposed for the format fixtures and tests.
#[doc(hidden)]
pub fn disk_load_from(
    dir: &std::path::Path,
    key: u64,
    spec: &BenchmarkSpec,
) -> Option<(Vec<u64>, SlackProfile)> {
    let path = disk_path_in(dir, key);
    match std::fs::read(&path) {
        Ok(mut bytes) => {
            fault::corrupt_cache_bytes(key, &mut bytes);
            match binfmt::from_record::<DiskEntry>(&bytes, RecordKind::CacheEntry, CACHE_SCHEMA) {
                Ok(entry) => {
                    let hit = validate_entry(entry, spec)?;
                    touch(&path);
                    Some(hit)
                }
                Err(e) if e.is_corrupt() => {
                    quarantine(dir, &path, &e.to_string());
                    None
                }
                // Stale container/schema/kind: a miss rewrites it in place.
                Err(_) => None,
            }
        }
        // No binary entry: fall back to a legacy JSON-era record.
        Err(_) => disk_load_legacy(dir, key, spec),
    }
}

/// Reads a legacy JSON entry (previous schema generation) and, on a
/// hit, rewrites it as a binary record so the next load takes the fast
/// path — the transparent migration promised in the README.
fn disk_load_legacy(
    dir: &std::path::Path,
    key: u64,
    spec: &BenchmarkSpec,
) -> Option<(Vec<u64>, SlackProfile)> {
    let path = legacy_disk_path_in(dir, key);
    let mut bytes = std::fs::read(&path).ok()?;
    fault::corrupt_cache_bytes(key, &mut bytes);
    let Some(payload) = open_record(&bytes) else {
        quarantine(dir, &path, "bad legacy envelope or checksum");
        return None;
    };
    let entry: DiskEntry = match serde_json::from_str(&payload) {
        Ok(entry) => entry,
        Err(_) => {
            quarantine(dir, &path, "legacy payload does not parse");
            return None;
        }
    };
    let hit = validate_entry(entry, spec)?;
    disk_store_to(dir, key, spec, &hit.0, &hit.1);
    let _ = std::fs::remove_file(&path);
    mg_info!(
        "cache: migrated legacy entry {} to the binary format",
        path.display()
    );
    Some(hit)
}

/// Configured size cap in megabytes. `u64::MAX` is the "unset"
/// sentinel resolving to [`DEFAULT_CACHE_MAX_MB`]; the environment knob
/// (`MG_CACHE_MAX_MB`) reaches here only through
/// [`crate::config::Config::apply`].
static CACHE_CAP_MB: AtomicU64 = AtomicU64::new(u64::MAX);

/// Sets the on-disk cache size cap, in megabytes, for the rest of the
/// process (`0` disables the disk layer's growth entirely: every entry
/// is evicted on the next store). Unset, the cap is
/// [`DEFAULT_CACHE_MAX_MB`].
pub fn set_cache_cap_mb(mb: u64) {
    CACHE_CAP_MB.store(mb, Ordering::Relaxed);
}

/// The configured size cap in bytes.
fn cache_cap_bytes() -> u64 {
    let mb = match CACHE_CAP_MB.load(Ordering::Relaxed) {
        u64::MAX => DEFAULT_CACHE_MAX_MB,
        mb => mb,
    };
    mb.saturating_mul(1024 * 1024)
}

/// Evicts least-recently-used cache entries from `dir` until the
/// remaining `ctx-*.mgb` (and not-yet-migrated `ctx-*.json`) files
/// total at most `cap_bytes`. "Least recently used" is by mtime:
/// loads freshen entries on every hit, and stores write them new. Ties
/// break by file name so eviction order is deterministic. Best-effort:
/// I/O errors skip the affected entry.
fn evict_lru(dir: &std::path::Path, cap_bytes: u64) {
    let Ok(listing) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<(std::time::SystemTime, PathBuf, u64)> = listing
        .flatten()
        .filter_map(|e| {
            let path = e.path();
            let name = path.file_name()?.to_str()?;
            if !(name.starts_with("ctx-") && (name.ends_with(".mgb") || name.ends_with(".json"))) {
                return None;
            }
            let meta = e.metadata().ok()?;
            let mtime = meta.modified().ok()?;
            Some((mtime, path, meta.len()))
        })
        .collect();
    let mut total: u64 = entries.iter().map(|&(_, _, len)| len).sum();
    if total <= cap_bytes {
        return;
    }
    entries.sort(); // oldest mtime first, then by path
    for (_, path, len) in entries {
        if total <= cap_bytes {
            break;
        }
        if std::fs::remove_file(&path).is_ok() {
            total -= len;
        }
    }
}

/// Logs and counts a failed cache write. The write path stays
/// best-effort (the sweep carries on), but a failure is no longer
/// indistinguishable from a miss: it is visible in `MG_LOG` output and
/// in the `mg_cache_write_errors_total` telemetry counter.
fn write_failed(what: &str, path: &std::path::Path, err: &dyn std::fmt::Display) {
    mg_obs::tele_counter!("mg_cache_write_errors_total").inc();
    mg_error!(
        "cache: failed to {what} {} ({err}); this key will keep missing",
        path.display()
    );
}

/// Stores one disk entry into `dir` as a binary record (atomic temp +
/// rename). Hidden from docs: the supported surface is [`context`];
/// this is exposed for the format fixtures and tests.
#[doc(hidden)]
pub fn disk_store_to(
    dir: &std::path::Path,
    key: u64,
    spec: &BenchmarkSpec,
    freqs: &[u64],
    slack: &SlackProfile,
) {
    let entry = DiskEntry {
        schema_version: CACHE_SCHEMA,
        bench: spec.name.clone(),
        freqs: freqs.to_vec(),
        slack: slack.clone(),
    };
    let bytes = binfmt::to_record(RecordKind::CacheEntry, CACHE_SCHEMA, &entry);
    // Best-effort: write via a unique temp file + rename so concurrent
    // writers of the same key never expose a torn entry.
    if let Err(e) = std::fs::create_dir_all(dir) {
        write_failed("create cache dir", dir, &e);
        return;
    }
    static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
    let tmp = dir.join(format!(
        "ctx-{key:016x}.tmp.{}.{}",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    if let Err(e) = std::fs::write(&tmp, bytes) {
        write_failed("write", &tmp, &e);
        return;
    }
    if let Err(e) = std::fs::rename(&tmp, disk_path_in(dir, key)) {
        write_failed("publish", &tmp, &e);
        let _ = std::fs::remove_file(&tmp);
        return;
    }
    // Keep the disk layer bounded: evict least-recently-used entries
    // beyond the configured cap. Stores happen only on cache misses, so
    // the directory walk is off every sweep's hot path.
    evict_lru(dir, cache_cap_bytes());
}

fn exec_err(
    spec: &BenchmarkSpec,
    stage: &'static str,
    source: mg_workloads::ExecError,
) -> BenchError {
    BenchError::Exec {
        bench: spec.name.clone(),
        stage: stage.to_string(),
        detail: source.to_string(),
    }
}

/// Generates the run-input workload and derives its committed trace (the
/// functional half of a context; cheap relative to profiling).
fn run_side(spec: &BenchmarkSpec, run_input: &InputSet) -> Result<(Workload, Trace), BenchError> {
    let workload = spec.generate_with_input(run_input);
    let (trace, _) = Executor::new(&workload.program)
        .run_with_mem(&workload.init_mem)
        .map_err(|e| exec_err(spec, "run-input execution", e))?;
    Ok((workload, trace))
}

/// Builds the full artifact set with no cache involvement.
pub(crate) fn compute_uncached(
    spec: &BenchmarkSpec,
    train_cfg: &MachineConfig,
    train_input: &InputSet,
    run_input: &InputSet,
) -> Result<ContextArtifacts, BenchError> {
    let train_w = spec.generate_with_input(train_input);
    let (_, freqs, slack) = try_profile_workload(&train_w, train_cfg)
        .map_err(|e| exec_err(spec, "train-input execution", e))?;
    let (workload, trace) = run_side(spec, run_input)?;
    Ok(ContextArtifacts {
        workload,
        trace,
        freqs,
        slack,
    })
}

/// Fetches (or builds and caches) the artifacts for a context request,
/// reporting how the request was served.
///
/// Lookup order: in-memory, then disk (if `use_disk`), then a full
/// rebuild. The corresponding counter is bumped exactly once per call and
/// matches the returned [`CacheOutcome`].
pub(crate) fn context(
    spec: &BenchmarkSpec,
    train_cfg: &MachineConfig,
    train_input: &InputSet,
    run_input: &InputSet,
    use_disk: bool,
) -> Result<(Arc<ContextArtifacts>, CacheOutcome), BenchError> {
    let key = context_key(spec, train_cfg, train_input, run_input);
    if let Some(hit) = mem().lock().expect("context cache lock").get(&key) {
        MEM_HITS.fetch_add(1, Ordering::Relaxed);
        mg_obs::tele_counter!("mg_cache_mem_hits_total").inc();
        return Ok((Arc::clone(hit), CacheOutcome::MemHit));
    }
    let disk_entry = if use_disk {
        disk_load_from(std::path::Path::new(CACHE_DIR), key, spec)
    } else {
        None
    };
    let (artifacts, outcome) = match disk_entry {
        Some((freqs, slack)) => {
            let (workload, trace) = run_side(spec, run_input)?;
            (
                ContextArtifacts {
                    workload,
                    trace,
                    freqs,
                    slack,
                },
                CacheOutcome::DiskHit,
            )
        }
        None => (
            compute_uncached(spec, train_cfg, train_input, run_input)?,
            CacheOutcome::Miss,
        ),
    };
    match outcome {
        CacheOutcome::DiskHit => {
            DISK_HITS.fetch_add(1, Ordering::Relaxed);
            mg_obs::tele_counter!("mg_cache_disk_hits_total").inc();
        }
        _ => {
            MISSES.fetch_add(1, Ordering::Relaxed);
            mg_obs::tele_counter!("mg_cache_misses_total").inc();
            if use_disk {
                disk_store_to(
                    std::path::Path::new(CACHE_DIR),
                    key,
                    spec,
                    &artifacts.freqs,
                    &artifacts.slack,
                );
            }
        }
    }
    let arc = Arc::new(artifacts);
    mem()
        .lock()
        .expect("context cache lock")
        .entry(key)
        .or_insert_with(|| Arc::clone(&arc));
    Ok((arc, outcome))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_workloads::Suite;

    #[test]
    fn keys_separate_specs_inputs_and_configs() {
        let a = BenchmarkSpec::new(Suite::MiBench, "sha");
        let b = BenchmarkSpec::new(Suite::MiBench, "crc32");
        let red = MachineConfig::reduced();
        let base = MachineConfig::baseline();
        let pi = a.primary_input();
        let ai = a.alternate_input();
        let k = context_key(&a, &red, &pi, &pi);
        assert_eq!(k, context_key(&a, &red, &pi, &pi), "key is stable");
        assert_ne!(
            k,
            context_key(&b, &red, &b.primary_input(), &b.primary_input())
        );
        assert_ne!(k, context_key(&a, &base, &pi, &pi));
        assert_ne!(k, context_key(&a, &red, &ai, &pi));
        assert_ne!(k, context_key(&a, &red, &pi, &ai));
        // Same name, locally modified params (the limit-study pattern).
        let mut short = a.clone();
        short.params.target_dyn = 1_000;
        assert_ne!(k, context_key(&short, &red, &pi, &pi));
    }

    #[test]
    fn disk_record_envelope_round_trips_and_detects_corruption() {
        let payload = r#"{"schema_version":2,"bench":"mib_sha"}"#.to_string();
        let sealed = seal_record(payload.clone()).unwrap();
        assert_eq!(open_record(&sealed).as_deref(), Some(payload.as_str()));
        // Truncation and payload flips both fail the envelope check.
        assert!(open_record(&sealed[..sealed.len() / 2]).is_none());
        let mut flipped = sealed.clone();
        let idx = flipped.len() / 2;
        flipped[idx] ^= 0x01;
        assert!(open_record(&flipped).is_none());
        assert!(open_record(b"not json at all").is_none());
    }

    #[test]
    fn cache_outcome_tags_round_trip() {
        for outcome in [
            CacheOutcome::MemHit,
            CacheOutcome::DiskHit,
            CacheOutcome::Miss,
        ] {
            assert_eq!(CacheOutcome::from_tag(outcome.tag()), Some(outcome));
        }
        assert_eq!(CacheOutcome::from_tag("bogus"), None);
    }

    #[test]
    fn stable_hash_matches_fnv1a_reference() {
        // Reference value for the empty string is the FNV-1a offset basis.
        assert_eq!(stable_hash64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(stable_hash64(b"a"), stable_hash64(b"b"));
    }

    #[test]
    fn disk_layer_round_trips_binary_entries() {
        let dir = std::env::temp_dir().join(format!("mg-cache-bin-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = BenchmarkSpec::new(Suite::MiBench, "sha");
        let freqs = vec![0u64, 1, 300_000];
        let slack = SlackProfile {
            per_static: vec![
                mg_sim::StaticProfile {
                    count: 7,
                    issue_rel: 1.5,
                    ..Default::default()
                };
                2
            ],
        };
        disk_store_to(&dir, 42, &spec, &freqs, &slack);
        assert!(disk_path_in(&dir, 42).exists(), "binary entry written");
        let (f, s) = disk_load_from(&dir, 42, &spec).expect("hit");
        assert_eq!(f, freqs);
        assert_eq!(s.per_static.len(), 2);
        assert_eq!(s.per_static[0].count, 7);
        assert_eq!(
            s.per_static[0].issue_rel.to_bits(),
            1.5f64.to_bits(),
            "floats replay by bit"
        );
        // A different benchmark under the same key is stale, not corrupt:
        // miss without quarantine.
        let other = BenchmarkSpec::new(Suite::MiBench, "crc32");
        assert!(disk_load_from(&dir, 42, &other).is_none());
        assert!(!dir.join("quarantine").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_binary_entries_are_quarantined() {
        let dir = std::env::temp_dir().join(format!("mg-cache-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = BenchmarkSpec::new(Suite::MiBench, "sha");
        let slack = SlackProfile::default();
        disk_store_to(&dir, 7, &spec, &[1, 2, 3], &slack);
        let path = disk_path_in(&dir, 7);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(
            disk_load_from(&dir, 7, &spec).is_none(),
            "corrupt entry misses"
        );
        assert!(!path.exists(), "corrupt entry removed from the cache");
        let quarantined = std::fs::read_dir(dir.join("quarantine"))
            .map(|d| d.flatten().count())
            .unwrap_or(0);
        assert_eq!(quarantined, 1, "corrupt entry preserved in quarantine");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_json_entries_load_and_migrate_to_binary() {
        let dir = std::env::temp_dir().join(format!("mg-cache-legacy-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let spec = BenchmarkSpec::new(Suite::MiBench, "sha");
        let entry = DiskEntry {
            schema_version: CACHE_SCHEMA,
            bench: spec.name.clone(),
            freqs: vec![9, 8, 7],
            slack: SlackProfile::default(),
        };
        let payload = serde_json::to_string(&entry).unwrap();
        let legacy = legacy_disk_path_in(&dir, 99);
        std::fs::write(&legacy, seal_record(payload).unwrap()).unwrap();

        let (f, _) = disk_load_from(&dir, 99, &spec).expect("legacy entry hits");
        assert_eq!(f, vec![9, 8, 7]);
        assert!(!legacy.exists(), "legacy file removed after migration");
        assert!(
            disk_path_in(&dir, 99).exists(),
            "binary replacement written"
        );
        // Second load comes from the binary record.
        let (f2, _) = disk_load_from(&dir, 99, &spec).expect("binary entry hits");
        assert_eq!(f2, vec![9, 8, 7]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Regenerates the checked-in cache fixtures under `tests/format/`
    /// — one legacy JSON entry and one binary entry of the same
    /// deterministic payload. Run explicitly when the record shape
    /// changes generation:
    /// `cargo test -p mg-bench --lib -- --ignored regenerate_cache_fixtures`
    #[test]
    #[ignore = "writes checked-in fixtures; run on schema generation changes"]
    fn regenerate_cache_fixtures() {
        let dir = std::path::PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/format"));
        std::fs::create_dir_all(&dir).unwrap();
        let _ = std::fs::remove_file(legacy_disk_path_in(&dir, 0x2a));
        let _ = std::fs::remove_file(disk_path_in(&dir, 0x2b));
        let spec = BenchmarkSpec::new(Suite::MiBench, "sha");
        let freqs = vec![1u64, 1, 449, 449, 449, 0, 0, 0, 253];
        let slack = SlackProfile {
            per_static: vec![
                mg_sim::StaticProfile {
                    count: 449,
                    issue_rel: 1.5,
                    ..Default::default()
                },
                mg_sim::StaticProfile::default(),
            ],
        };
        // Binary entry via the current writer.
        disk_store_to(&dir, 0x2b, &spec, &freqs, &slack);
        // Legacy entry byte-for-byte as the JSON-era writer produced it.
        let entry = DiskEntry {
            schema_version: CACHE_SCHEMA,
            bench: spec.name.clone(),
            freqs,
            slack,
        };
        let payload = serde_json::to_string(&entry).unwrap();
        let sealed = seal_record(payload).unwrap();
        std::fs::write(legacy_disk_path_in(&dir, 0x2a), sealed).unwrap();
    }

    #[test]
    fn evict_lru_drops_oldest_entries_first() {
        use std::time::{Duration, SystemTime};
        let dir = std::env::temp_dir().join(format!("mg-cache-evict-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // Four 100-byte entries with strictly increasing mtimes, plus one
        // non-entry file that must never be touched.
        let payload = [0u8; 100];
        for (i, name) in ["ctx-a.json", "ctx-b.json", "ctx-c.json", "ctx-d.json"]
            .iter()
            .enumerate()
        {
            let path = dir.join(name);
            std::fs::write(&path, payload).unwrap();
            let f = std::fs::File::options().append(true).open(&path).unwrap();
            f.set_modified(SystemTime::UNIX_EPOCH + Duration::from_secs(1_000 + i as u64))
                .unwrap();
        }
        std::fs::write(dir.join("unrelated.txt"), payload).unwrap();

        // Cap fits two entries: the two oldest go, the two newest stay.
        evict_lru(&dir, 200);
        assert!(!dir.join("ctx-a.json").exists());
        assert!(!dir.join("ctx-b.json").exists());
        assert!(dir.join("ctx-c.json").exists());
        assert!(dir.join("ctx-d.json").exists());
        assert!(dir.join("unrelated.txt").exists());

        // A "touched" (recently used) old entry survives over a newer one.
        let f = std::fs::File::options()
            .append(true)
            .open(dir.join("ctx-c.json"))
            .unwrap();
        f.set_modified(SystemTime::UNIX_EPOCH + Duration::from_secs(9_000))
            .unwrap();
        evict_lru(&dir, 100);
        assert!(dir.join("ctx-c.json").exists());
        assert!(!dir.join("ctx-d.json").exists());

        // Under-cap directories are left alone.
        evict_lru(&dir, 10_000);
        assert!(dir.join("ctx-c.json").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
