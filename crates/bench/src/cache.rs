//! Content-keyed cache for expensive per-benchmark artifacts.
//!
//! Building a [`crate::BenchContext`] is the hot path of every sweep: it
//! generates the train and run workloads, executes both functionally, and
//! runs a full slack-profiling timing simulation. The artifacts depend
//! only on (benchmark, generation parameters, train input, run input,
//! train machine config), so they are cached behind a stable content key:
//!
//! * **in memory** (process-wide, shared by all sweep workers), holding
//!   the complete [`ContextArtifacts`];
//! * **on disk** under `results/cache/`, holding the *timing-derived*
//!   half (execution frequencies and the slack profile). The run-input
//!   workload and committed trace are deterministic and cheap to
//!   regenerate functionally, and serializing 100k-instruction traces
//!   would bloat the cache two orders of magnitude for little gain, so a
//!   disk hit replays only the functional run, skipping the profiling
//!   simulation that dominates context construction.
//!
//! Disk entries are versioned ([`CACHE_SCHEMA`]) and integrity-checked:
//! every file carries an FNV-1a checksum over its payload, verified on
//! load. A mismatched schema is stale and silently treated as a miss; a
//! corrupt or truncated entry (checksum/parse failure) is *quarantined*
//! to `results/cache/quarantine/` with an `MG_LOG` warning so it never
//! surfaces as a deserialize error and the evidence survives for
//! inspection. All cache I/O is best-effort: a read-only or missing
//! `results/` directory silently degrades to the in-memory layer.

use crate::fault;
use crate::harness::BenchError;
use mg_core::pipeline::try_profile_workload;
use mg_obs::mg_error;
use mg_sim::{MachineConfig, SlackProfile};
use mg_workloads::{BenchmarkSpec, Executor, InputSet, Trace, Workload};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Version tag for on-disk cache entries. Bump when the cached payload or
/// its semantics change; stale entries are then ignored.
///
/// v2: entries are wrapped in a checksummed [`DiskRecord`] envelope.
pub const CACHE_SCHEMA: u32 = 2;

/// Directory holding on-disk context cache entries, relative to the
/// working directory (the workspace root for `cargo run`).
pub const CACHE_DIR: &str = "results/cache";

/// Subdirectory of [`CACHE_DIR`] where corrupt entries are moved on
/// load failure, preserving the evidence without blocking the sweep.
pub const QUARANTINE_DIR: &str = "results/cache/quarantine";

/// Maximum number of quarantined entries kept; older ones are deleted
/// so a recurring corruption source cannot grow the directory unbounded.
const QUARANTINE_KEEP: usize = 32;

/// Default on-disk cache size cap in megabytes. Generous for the full
/// suite (an entry is a few hundred KB) while keeping long-lived working
/// trees from accumulating stale keys without bound.
pub const DEFAULT_CACHE_MAX_MB: u64 = 256;

/// Everything expensive a [`crate::BenchContext`] needs: the run-input
/// workload, its committed trace, and the train-input execution
/// frequencies and slack profile.
#[derive(Clone, Debug)]
pub struct ContextArtifacts {
    /// Workload generated on the run input.
    pub workload: Workload,
    /// Committed-path trace of the run workload.
    pub trace: Trace,
    /// Per-static execution frequencies from the training run.
    pub freqs: Vec<u64>,
    /// Local slack profile trained on the train config.
    pub slack: SlackProfile,
}

/// How a single context request was served, for per-benchmark reporting
/// in sweep summaries (the process-wide [`CacheCounters`] only aggregate).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from the in-memory layer: no work at all.
    MemHit,
    /// Served from a disk entry: functional replay only.
    DiskHit,
    /// Full rebuild including the profiling simulation.
    Miss,
}

impl CacheOutcome {
    /// Short human-readable tag (`mem` / `disk` / `miss`).
    pub fn tag(&self) -> &'static str {
        match self {
            CacheOutcome::MemHit => "mem",
            CacheOutcome::DiskHit => "disk",
            CacheOutcome::Miss => "miss",
        }
    }

    /// Inverse of [`CacheOutcome::tag`], used by the sweep journal to
    /// replay the outcome recorded for a finished row.
    pub fn from_tag(tag: &str) -> Option<CacheOutcome> {
        match tag {
            "mem" => Some(CacheOutcome::MemHit),
            "disk" => Some(CacheOutcome::DiskHit),
            "miss" => Some(CacheOutcome::Miss),
            _ => None,
        }
    }
}

/// Snapshot of the process-wide cache counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Context requests served from the in-memory layer.
    pub mem_hits: u64,
    /// Context requests served from a disk entry (functional replay only).
    pub disk_hits: u64,
    /// Context requests that rebuilt everything.
    pub misses: u64,
}

impl CacheCounters {
    /// Total context requests observed.
    pub fn total(&self) -> u64 {
        self.mem_hits + self.disk_hits + self.misses
    }

    /// Counter-wise difference (`self - earlier`), for per-sweep deltas.
    pub fn since(&self, earlier: &CacheCounters) -> CacheCounters {
        CacheCounters {
            mem_hits: self.mem_hits - earlier.mem_hits,
            disk_hits: self.disk_hits - earlier.disk_hits,
            misses: self.misses - earlier.misses,
        }
    }
}

static MEM: OnceLock<Mutex<HashMap<u64, Arc<ContextArtifacts>>>> = OnceLock::new();
static MEM_HITS: AtomicU64 = AtomicU64::new(0);
static DISK_HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

fn mem() -> &'static Mutex<HashMap<u64, Arc<ContextArtifacts>>> {
    MEM.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Drops every in-memory context entry. Disk entries and the counters
/// are untouched: the next request for a dropped key is a disk hit (or
/// a miss). For long-lived processes under memory pressure, and for
/// tests that need to force the disk path.
pub fn clear_memory() {
    mem().lock().expect("context cache lock").clear();
}

/// Reads the process-wide cache counters.
pub fn counters() -> CacheCounters {
    CacheCounters {
        mem_hits: MEM_HITS.load(Ordering::Relaxed),
        disk_hits: DISK_HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
    }
}

/// FNV-1a over a byte string: the stable content hash behind cache keys
/// and the results-file machine fingerprint.
pub fn stable_hash64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The stable content key of a context: benchmark name *and* generation
/// parameters (specs can be locally modified, e.g. the limit study), both
/// input sets, and the training machine configuration. `Debug` formatting
/// of these plain-data configs is deterministic, and any change to their
/// shape conservatively invalidates old entries.
fn context_key(
    spec: &BenchmarkSpec,
    train_cfg: &MachineConfig,
    train_input: &InputSet,
    run_input: &InputSet,
) -> u64 {
    let repr = format!(
        "v{}|{}|{:?}|{:?}|{:?}|{:?}",
        CACHE_SCHEMA, spec.name, spec.params, train_input, run_input, train_cfg
    );
    stable_hash64(repr.as_bytes())
}

/// On-disk cache entry: the timing-derived artifacts plus enough context
/// to validate the hit.
#[derive(Serialize, Deserialize)]
struct DiskEntry {
    schema_version: u32,
    bench: String,
    freqs: Vec<u64>,
    slack: SlackProfile,
}

/// The checksummed envelope a cache file actually holds. `payload` is
/// the [`DiskEntry`] JSON *as a string*, so the checksum is over exact
/// bytes and never depends on re-serialization being canonical.
#[derive(Serialize, Deserialize)]
struct DiskRecord {
    /// FNV-1a of `payload`'s UTF-8 bytes, in zero-padded hex.
    checksum: String,
    payload: String,
}

/// Wraps serialized payload bytes in the checksummed [`DiskRecord`]
/// envelope (shared with the sweep journal, which stores rows the same
/// way).
pub(crate) fn seal_record(payload: String) -> Option<Vec<u8>> {
    let record = DiskRecord {
        checksum: format!("{:016x}", stable_hash64(payload.as_bytes())),
        payload,
    };
    serde_json::to_vec(&record).ok()
}

/// Parses and verifies a [`DiskRecord`], returning the payload string.
/// `None` means the bytes are corrupt or truncated (parse or checksum
/// failure) — not merely stale.
pub(crate) fn open_record(bytes: &[u8]) -> Option<String> {
    let record: DiskRecord = serde_json::from_slice(bytes).ok()?;
    let sum = format!("{:016x}", stable_hash64(record.payload.as_bytes()));
    (sum == record.checksum).then_some(record.payload)
}

fn disk_path(key: u64) -> PathBuf {
    PathBuf::from(CACHE_DIR).join(format!("ctx-{key:016x}.json"))
}

/// Moves a corrupt cache file into [`QUARANTINE_DIR`] (best-effort) and
/// warns through the leveled logger. Keeps at most [`QUARANTINE_KEEP`]
/// quarantined files, deleting the oldest beyond that.
fn quarantine(path: &std::path::Path, why: &str) {
    mg_obs::tele_counter!("mg_cache_quarantined_total").inc();
    let dir = std::path::Path::new(QUARANTINE_DIR);
    let moved = std::fs::create_dir_all(dir).is_ok()
        && path
            .file_name()
            .map(|name| std::fs::rename(path, dir.join(name)).is_ok())
            .unwrap_or(false);
    if !moved {
        let _ = std::fs::remove_file(path);
    }
    mg_error!(
        "cache: quarantined corrupt entry {} ({why}); treating as a miss",
        path.display()
    );
    // Bound the quarantine: drop the oldest files beyond the cap.
    let Ok(listing) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<(std::time::SystemTime, PathBuf)> = listing
        .flatten()
        .filter_map(|e| {
            let meta = e.metadata().ok()?;
            meta.is_file().then_some((meta.modified().ok()?, e.path()))
        })
        .collect();
    if entries.len() > QUARANTINE_KEEP {
        entries.sort();
        for (_, old) in &entries[..entries.len() - QUARANTINE_KEEP] {
            let _ = std::fs::remove_file(old);
        }
    }
}

fn disk_load(key: u64, spec: &BenchmarkSpec) -> Option<(Vec<u64>, SlackProfile)> {
    let path = disk_path(key);
    let mut bytes = std::fs::read(&path).ok()?;
    fault::corrupt_cache_bytes(key, &mut bytes);
    let Some(payload) = open_record(&bytes) else {
        quarantine(&path, "bad envelope or checksum");
        return None;
    };
    let entry: DiskEntry = match serde_json::from_str(&payload) {
        Ok(entry) => entry,
        Err(_) => {
            quarantine(&path, "payload does not parse");
            return None;
        }
    };
    if entry.schema_version != CACHE_SCHEMA || entry.bench != spec.name {
        // Stale, not corrupt: a miss rewrites it in place.
        return None;
    }
    // LRU touch: freshen the entry's mtime so hot entries survive
    // size-cap eviction. Best-effort, like all disk-layer I/O.
    if let Ok(f) = std::fs::File::options().append(true).open(&path) {
        let _ = f.set_modified(std::time::SystemTime::now());
    }
    Some((entry.freqs, entry.slack))
}

/// Configured size cap in megabytes. `u64::MAX` is the "unset"
/// sentinel resolving to [`DEFAULT_CACHE_MAX_MB`]; the environment knob
/// (`MG_CACHE_MAX_MB`) reaches here only through
/// [`crate::config::Config::apply`].
static CACHE_CAP_MB: AtomicU64 = AtomicU64::new(u64::MAX);

/// Sets the on-disk cache size cap, in megabytes, for the rest of the
/// process (`0` disables the disk layer's growth entirely: every entry
/// is evicted on the next store). Unset, the cap is
/// [`DEFAULT_CACHE_MAX_MB`].
pub fn set_cache_cap_mb(mb: u64) {
    CACHE_CAP_MB.store(mb, Ordering::Relaxed);
}

/// The configured size cap in bytes.
fn cache_cap_bytes() -> u64 {
    let mb = match CACHE_CAP_MB.load(Ordering::Relaxed) {
        u64::MAX => DEFAULT_CACHE_MAX_MB,
        mb => mb,
    };
    mb.saturating_mul(1024 * 1024)
}

/// Evicts least-recently-used cache entries from `dir` until the
/// remaining `ctx-*.json` files total at most `cap_bytes`. "Least
/// recently used" is by mtime: [`disk_load`] freshens entries on every
/// hit, and [`disk_store`] writes them new. Ties break by file name so
/// eviction order is deterministic. Best-effort: I/O errors skip the
/// affected entry.
fn evict_lru(dir: &std::path::Path, cap_bytes: u64) {
    let Ok(listing) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<(std::time::SystemTime, PathBuf, u64)> = listing
        .flatten()
        .filter_map(|e| {
            let path = e.path();
            let name = path.file_name()?.to_str()?;
            if !(name.starts_with("ctx-") && name.ends_with(".json")) {
                return None;
            }
            let meta = e.metadata().ok()?;
            let mtime = meta.modified().ok()?;
            Some((mtime, path, meta.len()))
        })
        .collect();
    let mut total: u64 = entries.iter().map(|&(_, _, len)| len).sum();
    if total <= cap_bytes {
        return;
    }
    entries.sort(); // oldest mtime first, then by path
    for (_, path, len) in entries {
        if total <= cap_bytes {
            break;
        }
        if std::fs::remove_file(&path).is_ok() {
            total -= len;
        }
    }
}

fn disk_store(key: u64, spec: &BenchmarkSpec, freqs: &[u64], slack: &SlackProfile) {
    let entry = DiskEntry {
        schema_version: CACHE_SCHEMA,
        bench: spec.name.clone(),
        freqs: freqs.to_vec(),
        slack: slack.clone(),
    };
    let Ok(payload) = serde_json::to_string(&entry) else {
        return;
    };
    let Some(json) = seal_record(payload) else {
        return;
    };
    // Best-effort: write via a unique temp file + rename so concurrent
    // writers of the same key never expose a torn entry.
    if std::fs::create_dir_all(CACHE_DIR).is_err() {
        return;
    }
    static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
    let tmp = PathBuf::from(CACHE_DIR).join(format!(
        "ctx-{key:016x}.tmp.{}.{}",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    if std::fs::write(&tmp, json).is_ok() {
        let _ = std::fs::rename(&tmp, disk_path(key));
    }
    // Keep the disk layer bounded: evict least-recently-used entries
    // beyond the configured cap. Stores happen only on cache misses, so
    // the directory walk is off every sweep's hot path.
    evict_lru(std::path::Path::new(CACHE_DIR), cache_cap_bytes());
}

fn exec_err(
    spec: &BenchmarkSpec,
    stage: &'static str,
    source: mg_workloads::ExecError,
) -> BenchError {
    BenchError::Exec {
        bench: spec.name.clone(),
        stage: stage.to_string(),
        detail: source.to_string(),
    }
}

/// Generates the run-input workload and derives its committed trace (the
/// functional half of a context; cheap relative to profiling).
fn run_side(spec: &BenchmarkSpec, run_input: &InputSet) -> Result<(Workload, Trace), BenchError> {
    let workload = spec.generate_with_input(run_input);
    let (trace, _) = Executor::new(&workload.program)
        .run_with_mem(&workload.init_mem)
        .map_err(|e| exec_err(spec, "run-input execution", e))?;
    Ok((workload, trace))
}

/// Builds the full artifact set with no cache involvement.
pub(crate) fn compute_uncached(
    spec: &BenchmarkSpec,
    train_cfg: &MachineConfig,
    train_input: &InputSet,
    run_input: &InputSet,
) -> Result<ContextArtifacts, BenchError> {
    let train_w = spec.generate_with_input(train_input);
    let (_, freqs, slack) = try_profile_workload(&train_w, train_cfg)
        .map_err(|e| exec_err(spec, "train-input execution", e))?;
    let (workload, trace) = run_side(spec, run_input)?;
    Ok(ContextArtifacts {
        workload,
        trace,
        freqs,
        slack,
    })
}

/// Fetches (or builds and caches) the artifacts for a context request,
/// reporting how the request was served.
///
/// Lookup order: in-memory, then disk (if `use_disk`), then a full
/// rebuild. The corresponding counter is bumped exactly once per call and
/// matches the returned [`CacheOutcome`].
pub(crate) fn context(
    spec: &BenchmarkSpec,
    train_cfg: &MachineConfig,
    train_input: &InputSet,
    run_input: &InputSet,
    use_disk: bool,
) -> Result<(Arc<ContextArtifacts>, CacheOutcome), BenchError> {
    let key = context_key(spec, train_cfg, train_input, run_input);
    if let Some(hit) = mem().lock().expect("context cache lock").get(&key) {
        MEM_HITS.fetch_add(1, Ordering::Relaxed);
        mg_obs::tele_counter!("mg_cache_mem_hits_total").inc();
        return Ok((Arc::clone(hit), CacheOutcome::MemHit));
    }
    let disk_entry = if use_disk { disk_load(key, spec) } else { None };
    let (artifacts, outcome) = match disk_entry {
        Some((freqs, slack)) => {
            let (workload, trace) = run_side(spec, run_input)?;
            (
                ContextArtifacts {
                    workload,
                    trace,
                    freqs,
                    slack,
                },
                CacheOutcome::DiskHit,
            )
        }
        None => (
            compute_uncached(spec, train_cfg, train_input, run_input)?,
            CacheOutcome::Miss,
        ),
    };
    match outcome {
        CacheOutcome::DiskHit => {
            DISK_HITS.fetch_add(1, Ordering::Relaxed);
            mg_obs::tele_counter!("mg_cache_disk_hits_total").inc();
        }
        _ => {
            MISSES.fetch_add(1, Ordering::Relaxed);
            mg_obs::tele_counter!("mg_cache_misses_total").inc();
            if use_disk {
                disk_store(key, spec, &artifacts.freqs, &artifacts.slack);
            }
        }
    }
    let arc = Arc::new(artifacts);
    mem()
        .lock()
        .expect("context cache lock")
        .entry(key)
        .or_insert_with(|| Arc::clone(&arc));
    Ok((arc, outcome))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_workloads::Suite;

    #[test]
    fn keys_separate_specs_inputs_and_configs() {
        let a = BenchmarkSpec::new(Suite::MiBench, "sha");
        let b = BenchmarkSpec::new(Suite::MiBench, "crc32");
        let red = MachineConfig::reduced();
        let base = MachineConfig::baseline();
        let pi = a.primary_input();
        let ai = a.alternate_input();
        let k = context_key(&a, &red, &pi, &pi);
        assert_eq!(k, context_key(&a, &red, &pi, &pi), "key is stable");
        assert_ne!(
            k,
            context_key(&b, &red, &b.primary_input(), &b.primary_input())
        );
        assert_ne!(k, context_key(&a, &base, &pi, &pi));
        assert_ne!(k, context_key(&a, &red, &ai, &pi));
        assert_ne!(k, context_key(&a, &red, &pi, &ai));
        // Same name, locally modified params (the limit-study pattern).
        let mut short = a.clone();
        short.params.target_dyn = 1_000;
        assert_ne!(k, context_key(&short, &red, &pi, &pi));
    }

    #[test]
    fn disk_record_envelope_round_trips_and_detects_corruption() {
        let payload = r#"{"schema_version":2,"bench":"mib_sha"}"#.to_string();
        let sealed = seal_record(payload.clone()).unwrap();
        assert_eq!(open_record(&sealed).as_deref(), Some(payload.as_str()));
        // Truncation and payload flips both fail the envelope check.
        assert!(open_record(&sealed[..sealed.len() / 2]).is_none());
        let mut flipped = sealed.clone();
        let idx = flipped.len() / 2;
        flipped[idx] ^= 0x01;
        assert!(open_record(&flipped).is_none());
        assert!(open_record(b"not json at all").is_none());
    }

    #[test]
    fn cache_outcome_tags_round_trip() {
        for outcome in [
            CacheOutcome::MemHit,
            CacheOutcome::DiskHit,
            CacheOutcome::Miss,
        ] {
            assert_eq!(CacheOutcome::from_tag(outcome.tag()), Some(outcome));
        }
        assert_eq!(CacheOutcome::from_tag("bogus"), None);
    }

    #[test]
    fn stable_hash_matches_fnv1a_reference() {
        // Reference value for the empty string is the FNV-1a offset basis.
        assert_eq!(stable_hash64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(stable_hash64(b"a"), stable_hash64(b"b"));
    }

    #[test]
    fn evict_lru_drops_oldest_entries_first() {
        use std::time::{Duration, SystemTime};
        let dir = std::env::temp_dir().join(format!("mg-cache-evict-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // Four 100-byte entries with strictly increasing mtimes, plus one
        // non-entry file that must never be touched.
        let payload = [0u8; 100];
        for (i, name) in ["ctx-a.json", "ctx-b.json", "ctx-c.json", "ctx-d.json"]
            .iter()
            .enumerate()
        {
            let path = dir.join(name);
            std::fs::write(&path, payload).unwrap();
            let f = std::fs::File::options().append(true).open(&path).unwrap();
            f.set_modified(SystemTime::UNIX_EPOCH + Duration::from_secs(1_000 + i as u64))
                .unwrap();
        }
        std::fs::write(dir.join("unrelated.txt"), payload).unwrap();

        // Cap fits two entries: the two oldest go, the two newest stay.
        evict_lru(&dir, 200);
        assert!(!dir.join("ctx-a.json").exists());
        assert!(!dir.join("ctx-b.json").exists());
        assert!(dir.join("ctx-c.json").exists());
        assert!(dir.join("ctx-d.json").exists());
        assert!(dir.join("unrelated.txt").exists());

        // A "touched" (recently used) old entry survives over a newer one.
        let f = std::fs::File::options()
            .append(true)
            .open(dir.join("ctx-c.json"))
            .unwrap();
        f.set_modified(SystemTime::UNIX_EPOCH + Duration::from_secs(9_000))
            .unwrap();
        evict_lru(&dir, 100);
        assert!(dir.join("ctx-c.json").exists());
        assert!(!dir.join("ctx-d.json").exists());

        // Under-cap directories are left alone.
        evict_lru(&dir, 10_000);
        assert!(dir.join("ctx-c.json").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
