//! Summary statistics shared by the figure binaries.
//!
//! These used to live in [`crate::harness`]; they are re-exported at the
//! old paths (`mg_bench::{geomean, mean, s_curve}`) for compatibility.

/// Geometric mean of a non-empty slice of positive values.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let sum: f64 = values.iter().map(|v| v.ln()).sum();
    (sum / values.len() as f64).exp()
}

/// Arithmetic mean.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Formats an S-curve: values sorted ascending, one line per program.
pub fn s_curve(mut values: Vec<(String, f64)>) -> Vec<(String, f64)> {
    values.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    values
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_and_mean() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn s_curve_sorts() {
        let v = s_curve(vec![("b".into(), 2.0), ("a".into(), 1.0)]);
        assert_eq!(v[0].0, "a");
    }
}
