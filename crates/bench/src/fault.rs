//! Deterministic fault injection for the sweep supervisor (feature
//! `fault-inject`).
//!
//! The resilience machinery — per-cell panic isolation, watchdogs,
//! retry, cache quarantine, journaled resume — only matters on paths
//! that healthy runs never take. This module makes those paths
//! *reproducibly* reachable: a fault plan names exactly which (bench,
//! cell) executions misbehave and how, so tests and CI can exercise
//! every failure route with a plain environment variable.
//!
//! A plan is a `;`-separated list of directives, each `kind:k=v,k=v`:
//!
//! * `panic[:bench=NAME][,cell=J]` — panic inside the matching cell.
//! * `slow:ms=N[,bench=NAME][,cell=J]` — sleep `N` ms inside the
//!   matching cell (trips a sweep watchdog).
//! * `flaky:times=N[,bench=NAME][,cell=J]` — panic on the first `N`
//!   *attempts* of the matching cell, then succeed (exercises retry).
//! * `cache-corrupt:all` / `cache-corrupt:key=HEX` — corrupt disk-cache
//!   bytes on load (exercises checksum quarantine).
//! * `rand-panic:seed=S,ppm=P` — panic any cell whose FNV-1a hash of
//!   `(seed, bench, cell)` falls below `P` parts per million. Purely
//!   hash-based, so the same seed always fails the same cells.
//!
//! The plan comes from `MG_FAULT`, parsed by [`crate::config`] at a
//! binary's entry point and installed via [`set_plan`] (tests call
//! [`set_plan`] directly). Injected panics carry a payload starting
//! with `mg-fault:` so assertions can tell them from real bugs.
//!
//! **Zero-cost contract:** without the `fault-inject` feature every
//! hook in this module is an empty `#[inline]` function — the compiled
//! sweep path is byte-for-byte the production one, matching the `obs`
//! feature's discipline.

#[cfg(feature = "fault-inject")]
pub use enabled::{parse_plan, set_plan, FaultPlan};

#[cfg(feature = "fault-inject")]
use crate::harness::BenchError;

/// Environment variable naming the fault plan (see the module docs for
/// the grammar). Unset means no faults.
pub const FAULT_ENV: &str = "MG_FAULT";

#[cfg(feature = "fault-inject")]
mod enabled {
    use super::{BenchError, FAULT_ENV};
    use crate::cache::stable_hash64;
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock, RwLock};

    /// One parsed `MG_FAULT` directive.
    #[derive(Clone, Debug, PartialEq, Eq)]
    enum Directive {
        Panic {
            bench: Option<String>,
            cell: Option<usize>,
        },
        Slow {
            ms: u64,
            bench: Option<String>,
            cell: Option<usize>,
        },
        Flaky {
            times: u32,
            bench: Option<String>,
            cell: Option<usize>,
        },
        CacheCorrupt {
            key: Option<u64>,
        },
        RandPanic {
            seed: u64,
            ppm: u64,
        },
    }

    /// A parsed fault plan: the ordered directives of an `MG_FAULT`
    /// value.
    #[derive(Clone, Debug, Default, PartialEq, Eq)]
    pub struct FaultPlan {
        directives: Vec<Directive>,
    }

    struct State {
        plan: RwLock<Option<FaultPlan>>,
        /// Per-(bench, cell) attempt counters for `flaky`.
        attempts: Mutex<HashMap<(String, usize), u32>>,
    }

    fn state() -> &'static State {
        static STATE: OnceLock<State> = OnceLock::new();
        STATE.get_or_init(|| State {
            plan: RwLock::new(None),
            attempts: Mutex::new(HashMap::new()),
        })
    }

    fn bad(value: &str, detail: &str) -> BenchError {
        BenchError::Config {
            knob: FAULT_ENV.to_string(),
            value: value.to_string(),
            detail: detail.to_string(),
        }
    }

    /// Parses a fault plan from an `MG_FAULT`-style string.
    pub fn parse_plan(spec: &str) -> Result<FaultPlan, BenchError> {
        let mut directives = Vec::new();
        for directive in spec.split(';').filter(|d| !d.trim().is_empty()) {
            let directive = directive.trim();
            let (kind, args) = match directive.split_once(':') {
                Some((k, a)) => (k.trim(), a.trim()),
                None => (directive, ""),
            };
            let mut bench: Option<String> = None;
            let mut cell: Option<usize> = None;
            let mut ms: Option<u64> = None;
            let mut times: Option<u32> = None;
            let mut key: Option<u64> = None;
            let mut seed: Option<u64> = None;
            let mut ppm: Option<u64> = None;
            let mut all = false;
            for arg in args.split(',').filter(|a| !a.trim().is_empty()) {
                let arg = arg.trim();
                if arg == "all" {
                    all = true;
                    continue;
                }
                let Some((k, v)) = arg.split_once('=') else {
                    return Err(bad(spec, "expected key=value directive arguments"));
                };
                let (k, v) = (k.trim(), v.trim());
                let parse_fail = || bad(spec, "directive argument does not parse");
                match k {
                    "bench" => bench = Some(v.to_string()),
                    "cell" => cell = Some(v.parse().map_err(|_| parse_fail())?),
                    "ms" => ms = Some(v.parse().map_err(|_| parse_fail())?),
                    "times" => times = Some(v.parse().map_err(|_| parse_fail())?),
                    "key" => key = Some(u64::from_str_radix(v, 16).map_err(|_| parse_fail())?),
                    "seed" => seed = Some(v.parse().map_err(|_| parse_fail())?),
                    "ppm" => ppm = Some(v.parse().map_err(|_| parse_fail())?),
                    _ => return Err(bad(spec, "unknown directive argument")),
                }
            }
            directives.push(match kind {
                "panic" => Directive::Panic { bench, cell },
                "slow" => Directive::Slow {
                    ms: ms.ok_or_else(|| bad(spec, "slow requires ms=N"))?,
                    bench,
                    cell,
                },
                "flaky" => Directive::Flaky {
                    times: times.ok_or_else(|| bad(spec, "flaky requires times=N"))?,
                    bench,
                    cell,
                },
                "cache-corrupt" => {
                    if !all && key.is_none() {
                        return Err(bad(spec, "cache-corrupt requires key=HEX or all"));
                    }
                    Directive::CacheCorrupt { key }
                }
                "rand-panic" => Directive::RandPanic {
                    seed: seed.ok_or_else(|| bad(spec, "rand-panic requires seed=S"))?,
                    ppm: ppm.ok_or_else(|| bad(spec, "rand-panic requires ppm=P"))?,
                },
                _ => return Err(bad(spec, "unknown fault directive")),
            });
        }
        Ok(FaultPlan { directives })
    }

    /// Installs (or clears, with `None`) the active fault plan. Also
    /// resets the `flaky` attempt counters so plans are independent
    /// across tests. [`crate::config::Config::apply`] calls this with
    /// the parsed `MG_FAULT` plan at binary entry.
    pub fn set_plan(plan: Option<FaultPlan>) {
        let s = state();
        s.attempts.lock().expect("fault attempt counters").clear();
        *s.plan.write().expect("fault plan lock") = plan;
    }

    fn matches(bench: &str, cell: usize, b: &Option<String>, c: &Option<usize>) -> bool {
        b.as_deref().is_none_or(|want| want == bench) && c.is_none_or(|want| want == cell)
    }

    /// Fault point at the top of every cell attempt. May sleep (`slow`)
    /// or panic (`panic` / `flaky` / `rand-panic`); the supervisor's
    /// `catch_unwind` and watchdog turn those into error rows.
    pub(crate) fn before_cell(bench: &str, cell: usize) {
        let plan = state().plan.read().expect("fault plan lock");
        let Some(plan) = plan.as_ref() else {
            return;
        };
        for d in &plan.directives {
            match d {
                Directive::Slow {
                    ms,
                    bench: b,
                    cell: c,
                } if matches(bench, cell, b, c) => {
                    std::thread::sleep(std::time::Duration::from_millis(*ms));
                }
                Directive::Flaky {
                    times,
                    bench: b,
                    cell: c,
                } if matches(bench, cell, b, c) => {
                    let mut attempts = state().attempts.lock().expect("fault attempt counters");
                    let n = attempts.entry((bench.to_string(), cell)).or_insert(0);
                    *n += 1;
                    if *n <= *times {
                        let n = *n;
                        drop(attempts);
                        panic!("mg-fault: flaky failure {n}/{times} in {bench} cell {cell}");
                    }
                }
                Directive::Panic { bench: b, cell: c } if matches(bench, cell, b, c) => {
                    panic!("mg-fault: injected panic into {bench} cell {cell}");
                }
                Directive::RandPanic { seed, ppm } => {
                    let h = stable_hash64(format!("{seed}|{bench}|{cell}").as_bytes());
                    if h % 1_000_000 < *ppm {
                        panic!("mg-fault: seeded random panic in {bench} cell {cell}");
                    }
                }
                _ => {}
            }
        }
    }

    /// Fault point on the disk-cache load path: corrupts the raw entry
    /// bytes (truncation) when a `cache-corrupt` directive matches, so
    /// the checksum fails and the quarantine path runs.
    pub(crate) fn corrupt_cache_bytes(key: u64, bytes: &mut Vec<u8>) {
        let plan = state().plan.read().expect("fault plan lock");
        let Some(plan) = plan.as_ref() else {
            return;
        };
        for d in &plan.directives {
            if let Directive::CacheCorrupt { key: want } = d {
                if want.is_none_or(|want| want == key) {
                    bytes.truncate(bytes.len() / 2);
                }
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn parse_accepts_every_directive_kind() {
            let plan = parse_plan(
                "panic:bench=gzip-like,cell=2; slow:ms=5000; \
                 flaky:times=2,bench=mib_sha; cache-corrupt:all; \
                 cache-corrupt:key=00ff; rand-panic:seed=7,ppm=1000",
            )
            .unwrap();
            assert_eq!(plan.directives.len(), 6);
            assert_eq!(
                plan.directives[0],
                Directive::Panic {
                    bench: Some("gzip-like".into()),
                    cell: Some(2),
                }
            );
            assert_eq!(
                plan.directives[4],
                Directive::CacheCorrupt { key: Some(0xff) }
            );
            assert_eq!(parse_plan("").unwrap(), FaultPlan::default());
        }

        #[test]
        fn parse_rejects_malformed_plans() {
            for bad in [
                "explode",
                "slow",
                "flaky:bench=x",
                "cache-corrupt",
                "rand-panic:seed=1",
                "panic:cell=abc",
                "panic:wat=1",
            ] {
                let err = parse_plan(bad).expect_err(bad);
                assert!(
                    err.to_string().contains(FAULT_ENV),
                    "diagnostic names the knob: {err}"
                );
            }
        }

        #[test]
        fn rand_panic_is_deterministic_per_seed() {
            let h = |seed: u64, bench: &str, cell: usize| {
                stable_hash64(format!("{seed}|{bench}|{cell}").as_bytes()) % 1_000_000
            };
            assert_eq!(h(7, "mib_sha", 0), h(7, "mib_sha", 0));
            assert_ne!(h(7, "mib_sha", 0), h(8, "mib_sha", 0));
        }
    }
}

// ---------------------------------------------------------------------
// Disabled build: every hook is an empty inline function, so the sweep
// path compiles to exactly the production code.
// ---------------------------------------------------------------------

#[cfg(not(feature = "fault-inject"))]
#[inline]
pub(crate) fn before_cell(_bench: &str, _cell: usize) {}

#[cfg(feature = "fault-inject")]
pub(crate) use enabled::before_cell;

#[cfg(not(feature = "fault-inject"))]
#[inline]
pub(crate) fn corrupt_cache_bytes(_key: u64, _bytes: &mut Vec<u8>) {}

#[cfg(feature = "fault-inject")]
pub(crate) use enabled::corrupt_cache_bytes;
