//! Sweep definitions shared between figure binaries and tests.
//!
//! Only Figure 6 lives here for now: it is the headline experiment, and
//! the runner's determinism and cache tests exercise exactly the sweep
//! the binary ships, so the two can never drift apart.

use crate::harness::{BenchError, Scheme};
use crate::runner::{SweepCell, SweepResult, SweepSpec};
use mg_sim::MachineConfig;
use mg_workloads::suite;
use serde::Serialize;

/// The five selectors Figure 6 compares.
pub const FIG6_SCHEMES: [Scheme; 5] = [
    Scheme::StructAll,
    Scheme::StructNone,
    Scheme::StructBounded,
    Scheme::SlackProfile,
    Scheme::SlackDynamic,
];

/// One benchmark row of Figure 6.
#[derive(Clone, Debug, Serialize)]
pub struct Fig6Row {
    /// Benchmark name.
    pub bench: String,
    /// Reduced-machine IPC without mini-graphs, relative to baseline.
    pub nomg_red: f64,
    /// Per-scheme relative performance and coverage.
    pub per_scheme: Vec<Fig6PerScheme>,
}

/// One scheme's numbers within a [`Fig6Row`].
#[derive(Clone, Debug, Serialize)]
pub struct Fig6PerScheme {
    /// Paper-style scheme name.
    pub scheme: &'static str,
    /// Reduced-machine IPC relative to the no-mg baseline machine.
    pub rel_red: f64,
    /// Baseline-machine IPC relative to the no-mg baseline machine.
    pub rel_full: f64,
    /// Measured dynamic coverage on the reduced machine.
    pub coverage: f64,
}

/// The Figure 6 sweep over the first `take` benchmarks of the suite:
/// cell 0 is no-mg on the baseline machine, cell 1 no-mg on the reduced
/// machine, then each scheme contributes a (reduced, baseline) cell pair.
pub fn fig6_spec(take: usize) -> SweepSpec {
    let base = MachineConfig::baseline();
    let red = MachineConfig::reduced();
    let mut spec = SweepSpec::new(&red)
        .benches(suite().iter().take(take).cloned())
        .cell(SweepCell::new(Scheme::NoMg, &base))
        .cell(SweepCell::new(Scheme::NoMg, &red));
    for s in FIG6_SCHEMES {
        spec = spec
            .cell(SweepCell::new(s, &red))
            .cell(SweepCell::new(s, &base));
    }
    spec
}

/// Converts a [`fig6_spec`] sweep result into figure rows. Benchmarks
/// with any failed cell are skipped and their first error returned
/// alongside the rows.
pub fn fig6_rows(result: &SweepResult) -> (Vec<Fig6Row>, Vec<BenchError>) {
    let mut rows = Vec::new();
    let mut failures = Vec::new();
    for bench in &result.rows {
        let ok = match bench.all_ok() {
            Ok(runs) => runs,
            Err(e) => {
                failures.push(e.clone());
                continue;
            }
        };
        let b = ok[0];
        let r = ok[1];
        let per_scheme = FIG6_SCHEMES
            .iter()
            .enumerate()
            .map(|(si, &s)| {
                let rr = ok[2 + 2 * si];
                let rf = ok[3 + 2 * si];
                Fig6PerScheme {
                    scheme: s.name(),
                    rel_red: rr.ipc / b.ipc,
                    rel_full: rf.ipc / b.ipc,
                    coverage: rr.coverage,
                }
            })
            .collect();
        rows.push(Fig6Row {
            bench: bench.bench.clone(),
            nomg_red: r.ipc / b.ipc,
            per_scheme,
        });
    }
    (rows, failures)
}
