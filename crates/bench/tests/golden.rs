//! Golden-stats regression test: the engine's observable outputs on the
//! full 78-benchmark suite must be byte-identical to the committed
//! snapshot taken from the pre-refactor engine.
//!
//! Regenerate with:
//!
//! ```text
//! MG_GOLDEN_REGEN=1 cargo test -p mg-bench --test golden
//! ```
//!
//! The snapshot is legitimate to regenerate only when the engine's
//! *modeled behaviour* intentionally changes (a new feature, a modeling
//! bug fix) — never to paper over an unintended divergence introduced by
//! a performance refactor.

use mg_bench::golden::{golden_suite, GoldenRow};

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/engine_stats.json"
);

#[test]
fn engine_stats_match_golden_snapshot() {
    let jobs = mg_bench::default_jobs();
    let rows = golden_suite(jobs);
    assert_eq!(rows.len(), 78, "golden digest covers the full suite");

    if std::env::var("MG_GOLDEN_REGEN").is_ok() {
        let json = serde_json::to_string_pretty(&rows).expect("serialize golden rows");
        std::fs::create_dir_all(std::path::Path::new(GOLDEN_PATH).parent().unwrap())
            .expect("create golden dir");
        std::fs::write(GOLDEN_PATH, json).expect("write golden snapshot");
        eprintln!("golden snapshot regenerated at {GOLDEN_PATH}");
        return;
    }

    let want_json = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden snapshot missing — regenerate with MG_GOLDEN_REGEN=1");
    let want: Vec<GoldenRow> = serde_json::from_str(&want_json).expect("golden snapshot parses");
    assert_eq!(
        rows.len(),
        want.len(),
        "suite size changed vs. golden snapshot"
    );
    let mut mismatches = Vec::new();
    for (got, exp) in rows.iter().zip(&want) {
        if got != exp {
            // Narrow the report to the first differing field.
            let detail = if got.freqs_hash != exp.freqs_hash {
                "freqs_hash".to_string()
            } else if got.slack_hash != exp.slack_hash {
                "slack_hash".to_string()
            } else if got.fig1_json != exp.fig1_json {
                format!(
                    "fig1_json:\n  got: {}\n  exp: {}",
                    got.fig1_json, exp.fig1_json
                )
            } else {
                got.cells
                    .iter()
                    .zip(&exp.cells)
                    .find(|(g, e)| g != e)
                    .map(|(g, e)| {
                        format!(
                            "cell {}/{}:\n  got: {} (ipc {})\n  exp: {} (ipc {})",
                            g.scheme, g.machine, g.stats, g.ipc_bits, e.stats, e.ipc_bits
                        )
                    })
                    .unwrap_or_else(|| "cell count".to_string())
            };
            mismatches.push(format!("{}: {}", got.bench, detail));
        }
    }
    assert!(
        mismatches.is_empty(),
        "{} benchmark(s) diverged from the golden snapshot:\n{}",
        mismatches.len(),
        mismatches.join("\n")
    );
}
