//! Integration tests for resilient sweep execution: panic isolation,
//! watchdog timeouts, retry, cache quarantine, cooperative shutdown,
//! and journaled resume.
//!
//! Fault injection (`MG_FAULT` semantics) is only compiled with the
//! `fault-inject` feature, so the tests that need to *provoke* failures
//! are gated on it (CI's resilience-smoke job runs them); the journal
//! and shutdown tests run in every configuration.
//!
//! The fault plan, shutdown flag, and context cache are process-wide,
//! so every test serializes on [`LOCK`].

use mg_bench::{BenchError, Scheme, SweepCell, SweepResult, SweepSpec};
use mg_sim::MachineConfig;
use mg_workloads::{suite, BenchmarkSpec};
use std::path::PathBuf;
use std::sync::Mutex;

static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn benches(skip: usize, take: usize) -> Vec<BenchmarkSpec> {
    suite().iter().skip(skip).take(take).cloned().collect()
}

fn spec_for(benches: &[BenchmarkSpec]) -> SweepSpec {
    let red = MachineConfig::reduced();
    SweepSpec::new(&red)
        .benches(benches.iter().cloned())
        .cell(SweepCell::new(Scheme::NoMg, &red))
        .cell(SweepCell::new(Scheme::StructAll, &red))
        .jobs(2)
        .disk_cache(false)
        .quiet(true)
}

fn temp_journal_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mg-resilience-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The deterministic payload of a sweep, for bit-identity comparisons:
/// every cell's full run or error. `f64` `Debug` prints the shortest
/// round-tripping representation, so equal strings mean equal bits.
fn runs_repr(result: &SweepResult) -> String {
    result
        .rows
        .iter()
        .map(|r| format!("{}: {:?}\n", r.bench, r.runs))
        .collect()
}

/// Cooperative shutdown: a sweep that starts after shutdown was
/// requested runs nothing, journals nothing, and reports every cell as
/// interrupted; after re-arming, a resume run executes all of it.
#[test]
fn shutdown_interrupts_cells_and_resume_reruns_them() {
    let _guard = lock();
    let root = temp_journal_root("shutdown");
    let benches = benches(0, 3);
    let spec = spec_for(&benches).journal(true).journal_dir(&root);

    mg_bench::request_shutdown();
    let interrupted = spec.try_run().expect("interrupted sweep still returns");
    mg_bench::clear_shutdown();

    assert_eq!(interrupted.summary.interrupted, benches.len() * 2);
    assert_eq!(interrupted.summary.failures, 0, "interrupted != failed");
    for row in &interrupted.rows {
        for cell in &row.runs {
            assert!(
                matches!(cell, Err(BenchError::Interrupted { .. })),
                "{cell:?}"
            );
        }
    }
    let journal_dir = interrupted
        .summary
        .journal_dir
        .clone()
        .expect("journaling was on");
    let journaled = std::fs::read_dir(&journal_dir)
        .map(|d| d.count())
        .unwrap_or(0);
    assert_eq!(journaled, 0, "interrupted rows must not be journaled");

    let resumed = spec.clone().resume(true).try_run().expect("resume runs");
    assert_eq!(
        resumed.summary.replayed, 0,
        "nothing was journaled to replay"
    );
    assert_eq!(resumed.summary.interrupted, 0);
    assert_eq!(resumed.summary.failures, 0);
    let _ = std::fs::remove_dir_all(&root);
}

/// Journaled resume replays finished rows bit-identically, and rows
/// whose journal records are missing (the kill-mid-sweep case: some
/// rows journaled, the rest lost with the process) are re-executed to
/// the same bits.
#[test]
fn resume_replays_journaled_rows_bit_identically() {
    let _guard = lock();
    let root = temp_journal_root("resume");
    let benches = benches(3, 3);
    let spec = spec_for(&benches).journal(true).journal_dir(&root);

    let first = spec.try_run().expect("first run");
    assert_eq!(first.summary.failures, 0);
    assert_eq!(first.summary.replayed, 0);
    let reference = runs_repr(&first);
    let journal_dir = first.summary.journal_dir.clone().expect("journaling on");
    let row_files: Vec<PathBuf> = std::fs::read_dir(&journal_dir)
        .expect("journal dir exists")
        .flatten()
        .map(|e| e.path())
        .collect();
    assert_eq!(
        row_files.len(),
        benches.len(),
        "one record per finished row"
    );

    // Full resume: every row replays, nothing executes, same bits.
    let replayed = spec.clone().resume(true).try_run().expect("resume");
    assert_eq!(replayed.summary.replayed, benches.len());
    assert!(replayed.rows.iter().all(|r| r.replayed));
    assert_eq!(runs_repr(&replayed), reference);

    // Kill simulation: drop one row's record (as if the process died
    // before writing it). That row re-executes, the others replay, and
    // the merged result is still bit-identical.
    std::fs::remove_file(&row_files[1]).expect("drop one record");
    let partial = spec.clone().resume(true).try_run().expect("partial resume");
    assert_eq!(partial.summary.replayed, benches.len() - 1);
    assert_eq!(runs_repr(&partial), reference);

    // A different sweep shape must not replay this journal.
    let reshaped = spec_for(&benches)
        .cell(SweepCell::new(
            Scheme::StructNone,
            &MachineConfig::reduced(),
        ))
        .journal_dir(&root)
        .resume(true)
        .try_run()
        .expect("reshaped sweep");
    assert_eq!(
        reshaped.summary.replayed, 0,
        "shape change invalidates records"
    );
    let _ = std::fs::remove_dir_all(&root);
}

/// A panic escaping a whole benchmark task surfaces as error rows for
/// that benchmark only; the rest of the sweep completes. (Cell-level
/// panic injection is exercised in the fault-gated tests below; this
/// covers the `par_map_catch` safety net with a plain library sweep.)
#[test]
fn error_rows_count_as_failures_not_interruptions() {
    let _guard = lock();
    // A benchmark whose every run hits the cycle cap: zero-width commit.
    let mut stuck = MachineConfig::reduced();
    stuck.commit_width = 0;
    let benches = benches(6, 2);
    let result = SweepSpec::new(&MachineConfig::reduced())
        .benches(benches.iter().cloned())
        .cell(SweepCell::new(Scheme::NoMg, &stuck))
        .jobs(2)
        .disk_cache(false)
        .quiet(true)
        .try_run()
        .expect("sweep completes despite failing cells");
    assert_eq!(result.summary.failures, benches.len());
    assert_eq!(result.summary.interrupted, 0);
    for row in &result.rows {
        assert!(matches!(row.runs[0], Err(BenchError::CycleCap { .. })));
    }
}

#[cfg(feature = "fault-inject")]
mod fault_injected {
    use super::*;
    use mg_bench::fault;
    use std::time::Duration;

    fn plan(s: &str) -> fault::FaultPlan {
        fault::parse_plan(s).expect("test plan parses")
    }

    /// Injected panics unwind through `catch_unwind`, which still runs
    /// the default panic hook and would spray backtraces over the test
    /// output; silence the hook while a test expects panics.
    type PanicHook = Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send>;

    struct QuietPanics(Option<PanicHook>);

    fn quiet_panics() -> QuietPanics {
        let old = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        QuietPanics(Some(old))
    }

    impl Drop for QuietPanics {
        fn drop(&mut self) {
            if let Some(hook) = self.0.take() {
                let _ = std::panic::take_hook();
                std::panic::set_hook(hook);
            }
        }
    }

    /// Clears the fault plan even when an assertion unwinds.
    struct ClearPlan;
    impl Drop for ClearPlan {
        fn drop(&mut self) {
            fault::set_plan(None);
        }
    }

    /// The acceptance scenario: one benchmark of the sweep panics
    /// mid-flight; its cells become `Panicked` error rows and every
    /// other row completes normally — the process never dies.
    #[test]
    fn injected_panic_yields_one_error_row_and_n_minus_one_ok_rows() {
        let _guard = lock();
        let _quiet = quiet_panics();
        let _clear = ClearPlan;
        let benches = benches(8, 4);
        let victim = benches[2].name.clone();
        fault::set_plan(Some(plan(&format!("panic:bench={victim}"))));
        let result = spec_for(&benches).try_run().expect("sweep survives");
        assert_eq!(result.summary.failures, 2, "both cells of the victim row");
        for (i, row) in result.rows.iter().enumerate() {
            if i == 2 {
                for cell in &row.runs {
                    match cell {
                        Err(BenchError::Panicked { bench, payload, .. }) => {
                            assert_eq!(*bench, victim);
                            assert!(payload.contains("mg-fault:"), "{payload}");
                        }
                        other => panic!("expected Panicked, got {other:?}"),
                    }
                }
            } else {
                assert!(row.all_ok().is_ok(), "row {i} should be clean");
            }
        }
    }

    /// A cell that stalls past the watchdog limit is reported as
    /// `TimedOut` while the benchmark's other cells run normally.
    #[test]
    fn watchdog_times_out_stuck_cells() {
        let _guard = lock();
        let _clear = ClearPlan;
        let benches = benches(12, 2);
        let victim = benches[0].name.clone();
        // The limit must beat a debug-build cell (hundreds of ms) with
        // margin while staying far below the injected stall.
        fault::set_plan(Some(plan(&format!("slow:ms=8000,bench={victim},cell=0"))));
        let result = spec_for(&benches)
            .watchdog(Duration::from_millis(2000))
            .try_run()
            .expect("sweep survives");
        match &result.rows[0].runs[0] {
            Err(BenchError::TimedOut {
                bench,
                cell,
                limit_ms,
            }) => {
                assert_eq!(*bench, victim);
                assert_eq!(*cell, 0);
                assert_eq!(*limit_ms, 2000);
            }
            other => panic!("expected TimedOut, got {other:?}"),
        }
        assert!(result.rows[0].runs[1].is_ok(), "only cell 0 was slowed");
        assert!(result.rows[1].all_ok().is_ok());
        assert_eq!(result.summary.failures, 1);
    }

    /// Transient (flaky) failures are retried with backoff and the
    /// sweep ends clean, with the retry spend reported in the summary.
    #[test]
    fn flaky_cells_recover_within_the_retry_budget() {
        let _guard = lock();
        let _quiet = quiet_panics();
        let _clear = ClearPlan;
        let benches = benches(14, 2);
        let victim = benches[1].name.clone();
        fault::set_plan(Some(plan(&format!("flaky:times=1,bench={victim}"))));
        let result = spec_for(&benches)
            .retries(2)
            .try_run()
            .expect("sweep survives");
        assert_eq!(result.summary.failures, 0, "flaky cells recovered");
        // Each of the victim's two cells failed once before succeeding.
        assert_eq!(result.rows[1].retries, 2);
        assert_eq!(result.summary.retries, 2);
        assert_eq!(result.rows[0].retries, 0);
    }

    /// Without a retry budget the same flake is a hard `Panicked` row:
    /// retry is opt-in.
    #[test]
    fn flaky_cells_fail_without_a_retry_budget() {
        let _guard = lock();
        let _quiet = quiet_panics();
        let _clear = ClearPlan;
        let benches = benches(16, 1);
        fault::set_plan(Some(plan(&format!(
            "flaky:times=1,bench={}",
            benches[0].name
        ))));
        let result = spec_for(&benches).try_run().expect("sweep survives");
        assert_eq!(result.summary.failures, 2);
        assert_eq!(result.summary.retries, 0);
        assert!(matches!(
            result.rows[0].runs[0],
            Err(BenchError::Panicked { .. })
        ));
    }

    /// A corrupt disk-cache entry is detected by its checksum,
    /// quarantined (not deserialized, not fatal), and rebuilt from
    /// scratch with identical results.
    #[test]
    fn corrupt_cache_entries_are_quarantined_and_rebuilt() {
        let _guard = lock();
        let _clear = ClearPlan;
        // A spec unique to this test so its cache key collides with
        // nothing else (quarantine asserts rely on this entry).
        let mut bench = suite()[18].clone();
        bench.params.target_dyn = 21_000;
        let red = MachineConfig::reduced();
        let spec = SweepSpec::new(&red)
            .bench(&bench)
            .cell(SweepCell::new(Scheme::NoMg, &red))
            .disk_cache(true)
            .quiet(true);

        // Seed the disk entry, then force the next lookup onto the disk
        // path by dropping the in-memory layer.
        let first = spec.try_run().expect("seeding run");
        assert_eq!(first.summary.failures, 0);
        mg_bench::cache::clear_memory();

        // Quarantined files keep their cache-entry name, so a leftover
        // from an earlier test run would absorb the rename; start clean.
        let quarantine = std::path::Path::new(mg_bench::cache::QUARANTINE_DIR);
        let _ = std::fs::remove_dir_all(quarantine);
        let quarantined_before = 0;

        fault::set_plan(Some(plan("cache-corrupt:all")));
        let second = spec.try_run().expect("sweep survives corruption");
        fault::set_plan(None);

        assert_eq!(second.summary.failures, 0);
        assert_eq!(
            second.rows[0].cache,
            Some(mg_bench::CacheOutcome::Miss),
            "corrupt entry must rebuild, not deserialize"
        );
        let quarantined_after = std::fs::read_dir(quarantine)
            .map(|d| d.count())
            .unwrap_or(0);
        assert!(
            quarantined_after > quarantined_before,
            "the corrupt entry was moved to quarantine \
             ({quarantined_before} -> {quarantined_after})"
        );
        assert_eq!(
            runs_repr(&second),
            runs_repr(&first),
            "rebuild is bit-identical"
        );
    }

    /// An unparseable fault plan is a configuration error surfaced as a
    /// value by `try_run` (binaries print it and exit 2), never a panic.
    #[test]
    fn malformed_fault_plans_are_config_errors() {
        let _guard = lock();
        let err = fault::parse_plan("panic:cell=not-a-number").expect_err("must not parse");
        match err {
            BenchError::Config { knob, .. } => assert_eq!(knob, "MG_FAULT"),
            other => panic!("expected Config, got {other:?}"),
        }
    }
}
