//! Integration tests for the parallel sweep runner: determinism of
//! parallel output, context-cache behaviour, and the fallible harness
//! construction paths.
//!
//! The context cache and its counters are process-wide, so every test
//! that touches them serializes on [`LOCK`].

use mg_bench::cache;
use mg_bench::figures::{fig6_rows, fig6_spec};
use mg_bench::{Scheme, SweepCell, SweepSpec};
use mg_sim::MachineConfig;
use mg_workloads::suite;
use std::sync::Mutex;

static LOCK: Mutex<()> = Mutex::new(());

/// The acceptance bar of the runner: a parallel sweep's JSON is
/// byte-identical to a serial (`MG_JOBS=1`-equivalent) sweep's.
#[test]
fn parallel_fig6_json_is_byte_identical_to_serial() {
    let _guard = LOCK.lock().unwrap();
    let parallel = {
        let result = fig6_spec(6).jobs(4).disk_cache(false).quiet(true).run();
        let (rows, failures) = fig6_rows(&result);
        assert!(failures.is_empty(), "failures: {failures:?}");
        serde_json::to_string_pretty(&rows).unwrap()
    };
    let serial = {
        let result = fig6_spec(6).jobs(1).disk_cache(false).quiet(true).run();
        let (rows, failures) = fig6_rows(&result);
        assert!(failures.is_empty(), "failures: {failures:?}");
        serde_json::to_string_pretty(&rows).unwrap()
    };
    assert_eq!(parallel, serial);
}

/// A second sweep over the same spec rebuilds nothing: every context
/// comes from the in-memory cache.
#[test]
fn second_sweep_is_all_context_cache_hits() {
    let _guard = LOCK.lock().unwrap();
    let benches: Vec<_> = suite().iter().skip(10).take(3).cloned().collect();
    let red = MachineConfig::reduced();
    let spec = SweepSpec::new(&red)
        .benches(benches.clone())
        .cell(SweepCell::new(Scheme::NoMg, &red))
        .disk_cache(false)
        .quiet(true);

    let before = cache::counters();
    let first = spec.run();
    let after_first = cache::counters();
    let second = spec.run();
    let after_second = cache::counters();

    assert_eq!(first.summary.failures, 0);
    assert_eq!(second.summary.failures, 0);
    // The first sweep may hit contexts other tests built, but the second
    // sweep must be 100% in-memory hits with zero rebuilds.
    let d1 = after_first.since(&before);
    let d2 = after_second.since(&after_first);
    assert_eq!(d1.total(), benches.len() as u64);
    assert_eq!(d2.misses, 0);
    assert_eq!(d2.disk_hits, 0);
    assert_eq!(d2.mem_hits, benches.len() as u64);
}

/// A machine that can never retire (zero-width commit) must surface as
/// `BenchError::CycleCap` through the fallible harness API rather than
/// hanging or panicking — exercised here against the event-driven
/// scheduler, whose wakeup heap simply drains while the ROB stays full.
#[test]
fn cycle_capped_run_surfaces_as_bench_error() {
    use mg_bench::{BenchContext, BenchError};
    let _guard = LOCK.lock().unwrap();
    let mut spec = mg_workloads::limit_study_benchmark();
    spec.params.target_dyn = 2_000; // keep the capped spin short
    let red = MachineConfig::reduced();
    let ctx = BenchContext::try_new(&spec, &red).unwrap();
    let mut stuck = red.clone();
    stuck.commit_width = 0;
    match ctx.try_run(Scheme::NoMg, &stuck) {
        Err(BenchError::CycleCap { bench, scheme }) => {
            assert_eq!(bench, spec.name);
            assert_eq!(scheme, Scheme::NoMg);
        }
        Ok(r) => panic!("expected CycleCap, got a successful run: {r:?}"),
        Err(e) => panic!("expected CycleCap, got {e}"),
    }
}

/// The `try_new` shorthand agrees with the explicit builder path it
/// abbreviates (same inputs, same cache policy, same bits).
#[test]
fn try_new_shorthand_matches_explicit_builder() {
    use mg_bench::BenchContext;
    let _guard = LOCK.lock().unwrap();
    let spec = mg_workloads::limit_study_benchmark();
    let red = MachineConfig::reduced();
    let short = BenchContext::try_new(&spec, &red)
        .unwrap()
        .try_run(Scheme::StructAll, &red)
        .unwrap();
    let explicit = BenchContext::builder(&spec, &red)
        .train_input(spec.primary_input())
        .run_input(spec.primary_input())
        .build()
        .unwrap()
        .try_run(Scheme::StructAll, &red)
        .unwrap();
    assert_eq!(short.cycles, explicit.cycles);
    assert_eq!(short.ipc, explicit.ipc);
    assert_eq!(short.coverage, explicit.coverage);
}
