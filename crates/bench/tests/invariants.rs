//! Accounting invariants of [`mg_sim::SimStats`] on real engine runs.
//!
//! The unit tests in `mg-sim` pin the identities on hand-built stats;
//! these integration tests pin them on stats the engine actually
//! produces, across schemes that exercise every commit path: plain
//! singletons, embedded handles, and outlined (disabled) instances with
//! their synthesized jumps.

use mg_bench::{BenchContext, Scheme};
use mg_sim::MachineConfig;
use mg_workloads::{suite, BenchmarkSpec};

fn short_spec(name: &str) -> BenchmarkSpec {
    let mut s = suite()
        .into_iter()
        .find(|s| s.name == name)
        .expect("benchmark in suite");
    s.params.target_dyn = 10_000;
    s
}

#[test]
fn engine_stats_satisfy_invariants_across_schemes() {
    let red = MachineConfig::reduced();
    let ctx = BenchContext::builder(&short_spec("mib_crc32"), &red)
        .disk_cache(false)
        .build()
        .expect("context builds");
    // NoMg commits only singletons; StructAll commits handles;
    // SlackDynamic additionally outlines disabled instances (jumps).
    for scheme in [
        Scheme::NoMg,
        Scheme::StructAll,
        Scheme::SlackProfile,
        Scheme::SlackDynamic,
    ] {
        let (r, _) = ctx
            .try_sim_with(scheme, &red, None, None)
            .expect("simulation runs");
        assert!(r.stats.cycles > 0, "{}: ran no cycles", scheme.name());
        assert!(
            r.stats.committed_instrs > 0,
            "{}: committed nothing",
            scheme.name()
        );
        if let Err(e) = r.stats.check_invariants() {
            panic!("{}: {e}", scheme.name());
        }
    }
}

#[test]
fn engine_stats_satisfy_invariants_on_a_second_workload() {
    let red = MachineConfig::reduced();
    let ctx = BenchContext::builder(&short_spec("mib_sha"), &red)
        .disk_cache(false)
        .build()
        .expect("context builds");
    for scheme in [Scheme::StructAll, Scheme::StructBounded] {
        let (r, _) = ctx
            .try_sim_with(scheme, &red, None, None)
            .expect("simulation runs");
        if let Err(e) = r.stats.check_invariants() {
            panic!("{}: {e}", scheme.name());
        }
    }
}
