//! End-to-end smoke of the observability stack (`--features obs`):
//! conservation of stall attribution against the engine's own cycle
//! count, schema validity of the emitted trace JSON, pipeview rendering,
//! sweep-level aggregation, and — the zero-cost contract's run-time
//! half — bit-identical statistics with the observer attached.

#![cfg(feature = "obs")]

use mg_bench::harness::ObsSection;
use mg_bench::{
    machine_fingerprint, BenchContext, Envelope, Scheme, SweepCell, SweepSpec, SCHEMA_VERSION,
};
use mg_sim::{MachineConfig, ObsConfig};
use mg_workloads::{suite, BenchmarkSpec};
use serde::Serialize;

fn short_spec(name: &str) -> BenchmarkSpec {
    let mut s = suite()
        .into_iter()
        .find(|s| s.name == name)
        .expect("benchmark in suite");
    s.params.target_dyn = 10_000;
    s
}

fn ctx(name: &str) -> BenchContext {
    let red = MachineConfig::reduced();
    BenchContext::builder(&short_spec(name), &red)
        .disk_cache(false)
        .build()
        .expect("context builds")
}

#[test]
fn stall_attribution_conserves_engine_cycles() {
    let red = MachineConfig::reduced();
    let (run, report) = ctx("mib_crc32")
        .try_run_obs(Scheme::StructAll, &red, ObsConfig::default())
        .expect("instrumented run succeeds");
    assert_eq!(
        report.cycles, run.cycles,
        "the report covers exactly the run's cycles"
    );
    assert!(
        report.conservation_ok(),
        "every issue slot must be charged exactly once per cycle"
    );
    assert!(report.committed_instrs > 0);
    assert_eq!(report.issue_width, report.stalls.width);
}

#[test]
fn observer_does_not_perturb_the_simulation() {
    let red = MachineConfig::reduced();
    let p = ctx("mib_crc32")
        .prepare_sim(Scheme::StructAll, &red, None, None)
        .expect("cell prepares");
    let plain = p.simulate();
    let mut instrumented = p.clone();
    instrumented.opts.obs = Some(ObsConfig::default());
    let observed = instrumented.simulate();
    assert_eq!(
        plain.stats, observed.stats,
        "attaching the observer must not change a single statistic"
    );
    assert!(plain.obs.is_none());
    assert!(observed.obs.is_some());
}

#[test]
fn pipeview_renders_the_tail_of_the_run() {
    let red = MachineConfig::reduced();
    let (_, report) = ctx("mib_crc32")
        .try_run_obs(Scheme::StructAll, &red, ObsConfig::default())
        .expect("instrumented run succeeds");
    let (lo, hi) = report.tail_window(32);
    let view = report.pipeview(lo, hi);
    assert!(view.contains("seq"), "header row present");
    assert!(
        view.lines().count() > 2,
        "the tail window shows ops:\n{view}"
    );
    assert!(
        view.contains('T'),
        "ops commit in the tail of a finished run:\n{view}"
    );
}

#[test]
fn trace_json_matches_checked_in_schema() {
    let red = MachineConfig::reduced();
    let (_, report) = ctx("mib_crc32")
        .try_run_obs(Scheme::StructAll, &red, ObsConfig::default())
        .expect("instrumented run succeeds");
    let envelope = Envelope {
        schema_version: SCHEMA_VERSION,
        machine_fingerprint: machine_fingerprint(),
        rows: ObsSection::new("mib_crc32", Scheme::StructAll, report),
    };
    let value = envelope.to_value();
    let schema_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/obs/trace.schema.json");
    let schema_text = std::fs::read_to_string(schema_path).expect("schema file readable");
    let schema = serde_json::parse_value_str(&schema_text).expect("schema file parses");
    if let Err(e) = mg_obs::schema::validate(&value, &schema) {
        panic!("trace JSON violates tests/obs/trace.schema.json: {e}");
    }
}

#[test]
fn observed_sweep_aggregates_and_conserves() {
    let red = MachineConfig::reduced();
    let result = SweepSpec::new(&red)
        .bench(&short_spec("mib_crc32"))
        .bench(&short_spec("mib_sha"))
        .cell(SweepCell::new(Scheme::NoMg, &red))
        .cell(SweepCell::new(Scheme::StructAll, &red))
        .disk_cache(false)
        .quiet(true)
        .jobs(2)
        .observe(ObsConfig::default())
        .run();
    assert_eq!(result.summary.failures, 0);
    for row in &result.rows {
        let agg = row
            .obs
            .as_ref()
            .expect("observed sweep fills per-bench aggregates");
        assert_eq!(agg.runs, 2, "{}: one report per cell", row.bench);
        assert!(agg.conservation_ok(), "{}: aggregate conserves", row.bench);
    }
    let total = result.obs_aggregate();
    assert_eq!(total.runs, 4);
    assert!(total.conservation_ok());
    assert!(total.render().contains("4 runs"));
}
