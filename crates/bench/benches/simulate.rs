//! End-to-end criterion benchmark of the timing engine: one full
//! `simulate` call per iteration over prepared fig1-style cells, with
//! throughput reported in simulated cycles per second.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mg_bench::{BenchContext, Scheme};
use mg_sim::MachineConfig;
use mg_workloads::benchmark;

fn simulate_end_to_end(c: &mut Criterion) {
    let base = MachineConfig::baseline();
    let red = MachineConfig::reduced();
    let mut spec = benchmark("mib_crc32").expect("registry entry");
    spec.params.target_dyn = 30_000;
    let ctx = BenchContext::builder(&spec, &red)
        .disk_cache(false)
        .build()
        .expect("context builds");

    let cells = [
        ("nomg-base", Scheme::NoMg, &base),
        ("nomg-red", Scheme::NoMg, &red),
        ("structall-red", Scheme::StructAll, &red),
        ("slackprofile-red", Scheme::SlackProfile, &red),
        ("slackdynamic-red", Scheme::SlackDynamic, &red),
    ];

    let mut g = c.benchmark_group("simulate");
    for (name, scheme, machine) in cells {
        let prepared = ctx
            .prepare_sim(scheme, machine, None, None)
            .expect("cell prepares");
        let cycles = prepared.simulate().stats.cycles;
        g.throughput(Throughput::Elements(cycles));
        g.bench_function(name, |b| b.iter(|| prepared.simulate().stats.cycles));
    }
    g.finish();
}

criterion_group!(benches, simulate_end_to_end);
criterion_main!(benches);
