//! Criterion micro/meso-benchmarks of the reproduction's components:
//! functional execution, timing simulation (with and without
//! mini-graphs), candidate enumeration, greedy selection, slack
//! profiling, and the branch predictor / cache models.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use mg_core::candidate::{enumerate, SelectionConfig};
use mg_core::pipeline::{prepare, profile_workload};
use mg_core::select::{greedy_select, Selector};
use mg_sim::bpred::DirectionPredictor;
use mg_sim::cache::Cache;
use mg_sim::{simulate, BPredConfig, CacheConfig, MachineConfig, MgConfig, SimOptions};
use mg_workloads::{benchmark, Executor};

fn bench_workload() -> mg_workloads::Workload {
    let mut spec = benchmark("mib_crc32").expect("registry entry");
    spec.params.target_dyn = 30_000;
    spec.generate()
}

fn functional_execution(c: &mut Criterion) {
    let w = bench_workload();
    let (trace, _) = Executor::new(&w.program).run_with_mem(&w.init_mem).unwrap();
    let mut g = c.benchmark_group("functional");
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.bench_function("execute", |b| {
        b.iter(|| {
            Executor::new(&w.program)
                .run_with_mem(&w.init_mem)
                .unwrap()
                .0
                .len()
        })
    });
    g.finish();
}

fn timing_simulation(c: &mut Criterion) {
    let w = bench_workload();
    let (trace, _) = Executor::new(&w.program).run_with_mem(&w.init_mem).unwrap();
    let red = MachineConfig::reduced();
    let (_, freqs, slack) = profile_workload(&w, &red);
    let prepared = prepare(
        &w.program,
        &freqs,
        &Selector::SlackProfile(Default::default(), slack),
        &SelectionConfig::default(),
    );
    let (mg_trace, _) = Executor::new(&prepared.program)
        .run_with_mem(&w.init_mem)
        .unwrap();
    let mg_machine = red.clone().with_mg(MgConfig::paper());

    let mut g = c.benchmark_group("timing");
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.bench_function("singleton", |b| {
        b.iter(|| {
            simulate(&w.program, &trace, &red, SimOptions::default())
                .stats
                .cycles
        })
    });
    g.bench_function("with-minigraphs", |b| {
        b.iter(|| {
            simulate(
                &prepared.program,
                &mg_trace,
                &mg_machine,
                SimOptions::default(),
            )
            .stats
            .cycles
        })
    });
    g.bench_function("slack-profiling", |b| {
        b.iter(|| {
            simulate(
                &w.program,
                &trace,
                &red,
                SimOptions {
                    profile_slack: true,
                    ..SimOptions::default()
                },
            )
            .slack
            .unwrap()
            .per_static
            .len()
        })
    });
    g.finish();
}

fn selection(c: &mut Criterion) {
    let w = bench_workload();
    let (trace, _) = Executor::new(&w.program).run_with_mem(&w.init_mem).unwrap();
    let freqs = trace.static_freqs(&w.program);
    let cfg = SelectionConfig::default();
    let pool = enumerate(&w.program, &cfg);

    let mut g = c.benchmark_group("selection");
    g.bench_function("enumerate", |b| {
        b.iter(|| enumerate(&w.program, &cfg).len())
    });
    g.bench_function("greedy", |b| {
        b.iter_batched(
            || pool.clone(),
            |p| greedy_select(&w.program, &p, &freqs, &cfg).chosen.len(),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn predictors_and_caches(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro");
    g.bench_function("bpred-predict-train", |b| {
        let mut p = DirectionPredictor::new(&BPredConfig::paper());
        let mut x = 0x1234_5678u64;
        b.iter(|| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            p.predict_and_train(x & 0xffff, x & (1 << 40) != 0)
        })
    });
    g.bench_function("cache-access", |b| {
        let mut cache = Cache::new(CacheConfig {
            size_bytes: 32 * 1024,
            assoc: 2,
            line_bytes: 64,
            hit_lat: 3,
        });
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(8) & 0xf_ffff;
            cache.access(x)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    functional_execution,
    timing_simulation,
    selection,
    predictors_and_caches
);
criterion_main!(benches);
