use mg_workloads::*;
fn main() {
    println!(
        "{:<16} {:>7} {:>9} {:>6} {:>6} {:>6}",
        "name", "static", "dyn", "mem%", "br%", "blocks"
    );
    for spec in suite().iter().step_by(6) {
        let w = spec.generate();
        let (t, _) = Executor::new(&w.program)
            .with_limit(3_000_000)
            .run_with_mem(&w.init_mem)
            .unwrap();
        println!(
            "{:<16} {:>7} {:>9} {:>6.1} {:>6.1} {:>6}",
            spec.name,
            w.program.static_count(),
            t.len(),
            100.0 * t.mem_fraction(&w.program),
            100.0 * t.branch_fraction(&w.program),
            w.program.blocks().len()
        );
    }
}
