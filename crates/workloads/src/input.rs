//! Program input data sets.
//!
//! Real benchmarks run on different inputs across invocations; the paper's
//! robustness study (Figure 9, bottom) trains slack profiles on one input
//! and evaluates on another. An [`InputSet`] plays that role here: it
//! perturbs the initialized data memory, the loop trip counts, and which
//! loop nests are exercised (code coverage), without changing the static
//! code.

use serde::{Deserialize, Serialize};

/// A named input data set for a benchmark.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct InputSet {
    /// Input-set name (`train`, `ref`, `large`, `small`, ...).
    pub name: String,
    /// Seed perturbing initialized data values.
    pub data_seed: u64,
    /// Scale applied to loop trip counts, in percent (100 = nominal).
    pub trip_scale_pct: u32,
    /// Per-mille probability that any given loop nest is skipped by its
    /// input guard (code-coverage differences between inputs).
    pub skip_per_mille: u32,
}

impl InputSet {
    /// The default/primary input a benchmark self-trains on.
    pub fn primary() -> InputSet {
        InputSet {
            name: "train".into(),
            data_seed: 0x5eed_0001,
            trip_scale_pct: 100,
            skip_per_mille: 30,
        }
    }

    /// The alternate input used for cross-input robustness studies.
    pub fn alternate() -> InputSet {
        InputSet {
            name: "ref".into(),
            data_seed: 0xa17e_4a7e,
            trip_scale_pct: 140,
            skip_per_mille: 80,
        }
    }

    /// Trip-count scale as a float factor.
    pub fn trip_scale(&self) -> f64 {
        self.trip_scale_pct as f64 / 100.0
    }
}

impl Default for InputSet {
    fn default() -> InputSet {
        InputSet::primary()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primary_and_alternate_differ() {
        let p = InputSet::primary();
        let a = InputSet::alternate();
        assert_ne!(p.data_seed, a.data_seed);
        assert_ne!(p.trip_scale_pct, a.trip_scale_pct);
        assert_eq!(p, InputSet::default());
    }

    #[test]
    fn trip_scale_conversion() {
        assert!((InputSet::alternate().trip_scale() - 1.4).abs() < 1e-9);
    }
}

#[cfg(test)]
mod guard_tests {
    use super::*;
    use crate::exec::Executor;
    use crate::suite::{BenchmarkSpec, Suite};

    /// An input that skips every nest yields a drastically shorter run
    /// with the same static code.
    #[test]
    fn skip_guards_control_code_coverage() {
        let mut spec = BenchmarkSpec::new(Suite::MiBench, "guard_probe");
        spec.params.target_dyn = 20_000;
        let normal = InputSet::primary();
        let all_skipped = InputSet {
            name: "empty".into(),
            skip_per_mille: 1000,
            ..InputSet::primary()
        };
        let w_norm = spec.generate_with_input(&normal);
        let w_skip = spec.generate_with_input(&all_skipped);
        assert_eq!(w_norm.program.static_count(), w_skip.program.static_count());
        let (t_norm, _) = Executor::new(&w_norm.program)
            .run_with_mem(&w_norm.init_mem)
            .unwrap();
        let (t_skip, _) = Executor::new(&w_skip.program)
            .run_with_mem(&w_skip.init_mem)
            .unwrap();
        assert!(
            (t_skip.len() as f64) < 0.2 * t_norm.len() as f64,
            "skipped run {} vs normal {}",
            t_skip.len(),
            t_norm.len()
        );
        // Some static instructions executed in the normal run never run
        // in the skipped one: the cross-input code-coverage effect.
        let f_norm = t_norm.static_freqs(&w_norm.program);
        let f_skip = t_skip.static_freqs(&w_skip.program);
        let newly_dead = f_norm
            .iter()
            .zip(&f_skip)
            .filter(|(a, b)| **a > 0 && **b == 0)
            .count();
        assert!(newly_dead > 10, "only {newly_dead} newly-dead statics");
    }
}
