//! Generation parameters controlling a synthetic benchmark's character.

use serde::{Deserialize, Serialize};

/// Relative frequencies of instruction kinds in generated block bodies.
///
/// The remaining probability mass (1 − load − store − mul) is split
/// between register-register and register-immediate ALU operations.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct OpMix {
    /// Fraction of loads.
    pub load: f64,
    /// Fraction of stores.
    pub store: f64,
    /// Fraction of multi-cycle multiplies.
    pub mul: f64,
}

impl OpMix {
    /// Validates that fractions are sane.
    pub fn is_valid(&self) -> bool {
        let vals = [self.load, self.store, self.mul];
        vals.iter().all(|v| (0.0..=1.0).contains(v)) && vals.iter().sum::<f64>() <= 0.9
    }
}

/// Knobs that shape a generated benchmark.
///
/// Suite profiles supply the base values (see
/// [`Suite::base_params`](crate::Suite::base_params)); per-benchmark
/// jitter then diversifies individual programs within a suite.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GenParams {
    /// Number of top-level loop nests in `main`.
    pub loop_nests: usize,
    /// Whether nests may contain one inner loop (depth 2).
    pub allow_inner_loops: bool,
    /// Probability that a nest gets an inner loop.
    pub inner_loop_prob: f64,
    /// Inner loop trip count.
    pub inner_trips: u64,
    /// Number of body segments per loop body.
    pub body_segments: (usize, usize),
    /// Instructions per straight-line segment, inclusive range.
    pub block_len: (usize, usize),
    /// Probability that a segment is an if-then-else diamond.
    pub diamond_prob: f64,
    /// Probability that a segment is a call to a leaf function.
    pub call_prob: f64,
    /// Number of callable leaf functions.
    pub leaf_funcs: usize,
    /// Probability that an operand comes from a recent in-block
    /// definition (dependence-chain density; higher = less ILP).
    pub chain_bias: f64,
    /// Probability that a block-body instruction extends the loop-carried
    /// accumulator chain.
    pub acc_prob: f64,
    /// Instruction-kind mix.
    pub mix: OpMix,
    /// Probability that a diamond's condition depends on loaded data /
    /// LCG entropy rather than the loop counter.
    pub data_branch_prob: f64,
    /// Taken bias of data-dependent branches (0.5 = unpredictable).
    pub data_branch_bias: f64,
    /// Fraction of loads that pointer-chase through the ring region.
    pub pointer_chase_prob: f64,
    /// Size of the data region in 8-byte words (power of two).
    pub footprint_words: usize,
    /// Size of the pointer-chase ring in words (power of two).
    pub ring_words: usize,
    /// Stride, in words, of streaming accesses.
    pub stride_words: usize,
    /// Approximate committed dynamic instructions to aim for.
    pub target_dyn: usize,
}

impl GenParams {
    /// Validates parameter consistency.
    pub fn is_valid(&self) -> bool {
        self.loop_nests >= 1
            && self.body_segments.0 >= 1
            && self.body_segments.0 <= self.body_segments.1
            && self.block_len.0 >= 1
            && self.block_len.0 <= self.block_len.1
            && self.footprint_words.is_power_of_two()
            && self.ring_words.is_power_of_two()
            && self.stride_words >= 1
            && self.mix.is_valid()
            && (0.0..=1.0).contains(&self.diamond_prob)
            && (0.0..=1.0).contains(&self.call_prob)
            && (0.0..=1.0).contains(&self.chain_bias)
            && (0.0..=1.0).contains(&self.data_branch_prob)
            && (0.0..=1.0).contains(&self.data_branch_bias)
            && (0.0..=1.0).contains(&self.pointer_chase_prob)
            && self.target_dyn >= 1000
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> GenParams {
        GenParams {
            loop_nests: 4,
            allow_inner_loops: true,
            inner_loop_prob: 0.3,
            inner_trips: 8,
            body_segments: (3, 6),
            block_len: (4, 10),
            diamond_prob: 0.3,
            call_prob: 0.1,
            leaf_funcs: 2,
            chain_bias: 0.55,
            acc_prob: 0.1,
            mix: OpMix {
                load: 0.2,
                store: 0.08,
                mul: 0.04,
            },
            data_branch_prob: 0.35,
            data_branch_bias: 0.3,
            pointer_chase_prob: 0.2,
            footprint_words: 1 << 14,
            ring_words: 1 << 10,
            stride_words: 3,
            target_dyn: 50_000,
        }
    }

    #[test]
    fn base_params_validate() {
        assert!(base().is_valid());
    }

    #[test]
    fn invalid_footprint_rejected() {
        let mut p = base();
        p.footprint_words = 1000; // not a power of two
        assert!(!p.is_valid());
    }

    #[test]
    fn invalid_mix_rejected() {
        let mut p = base();
        p.mix.load = 0.9;
        assert!(!p.is_valid());
    }
}
