//! The synthetic benchmark generator.
//!
//! Turns a [`BenchmarkSpec`] + [`InputSet`] into a runnable [`Workload`]:
//! a validated [`Program`] plus the initialized data memory image (the
//! "loader" state). Generation is fully deterministic in the spec seed and
//! input set.
//!
//! # Program shape
//!
//! Generated programs mimic the loop-dominated structure of the paper's
//! benchmarks: `main` is a sequence of *loop nests*, each guarded by an
//! input-dependent skip branch (code-coverage variation between inputs),
//! with bodies built from straight-line segments, if-then-else diamonds,
//! optional inner loops, and calls to leaf functions. Block bodies draw
//! operands from recent in-block definitions (dependence chains) and
//! long-lived "warm" registers (loop counters, accumulators, an in-program
//! LCG), producing the spectrum of slack and serialization behaviour the
//! mini-graph experiments need. Memory traffic covers three patterns:
//! pointer-chasing through a randomly permuted ring, strided streaming,
//! and LCG-randomized accesses over the benchmark footprint.

use crate::input::InputSet;
use crate::suite::BenchmarkSpec;
use mg_isa::{BlockId, BrCond, FuncId, Instruction, Opcode, Program, ProgramBuilder, Reg};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Base address of the pointer-chase ring region.
pub const RING_BASE: u64 = 0x0010_0000;
/// Base address of the streaming/random data region.
pub const DATA_BASE: u64 = 0x0100_0000;

/// 64-bit LCG multiplier (Knuth's MMIX constant), loaded into a register
/// at program start and used by generated entropy code.
const LCG_MUL: i64 = 6364136223846793005;
const LCG_ADD: i64 = 1442695040888963407;

// Register conventions for generated code. Scratch pool R1..=R16 is
// block-local; everything above is long-lived ("warm").
const SCRATCH_LO: u8 = 1;
const SCRATCH_HI: u8 = 16;
const R_GUARD: Reg = Reg::R17;
const R_LCGMUL: Reg = Reg::R18;
const R_CTR_IN: Reg = Reg::R19;
const R_CTR_OUT: Reg = Reg::R20;
const R_LEAF_ACC: Reg = Reg::R21;
const R_ACC: Reg = Reg::R22;
const R_STREAM: Reg = Reg::R23;
const R_LCG: Reg = Reg::R24;
const R_SPARE: Reg = Reg::R25;
const R_THRESH: Reg = Reg::R26;
const R_CHASE: Reg = Reg::R27;
const R_DATA: Reg = Reg::R28;
const R_RING: Reg = Reg::R29;

/// A generated benchmark: the program and its initial memory image.
#[derive(Clone, Debug)]
pub struct Workload {
    /// The synthetic program.
    pub program: Program,
    /// Loader-initialized data memory (ring pointers + data values).
    pub init_mem: Vec<(u64, u64)>,
}

impl BenchmarkSpec {
    /// Generates the benchmark on its primary input.
    pub fn generate(&self) -> Workload {
        self.generate_with_input(&self.primary_input())
    }

    /// Generates the benchmark on a specific input set.
    pub fn generate_with_input(&self, input: &InputSet) -> Workload {
        Generator::new(self, input).generate()
    }
}

struct Generator<'a> {
    spec: &'a BenchmarkSpec,
    input: &'a InputSet,
    rng: StdRng,
    pb: ProgramBuilder,
    main: FuncId,
    leaves: Vec<FuncId>,
    cur: BlockId,
    next_scratch: u8,
    /// Scratch register temporarily excluded from reuse (a hoisted
    /// condition that must survive until its branch).
    reserved_scratch: Option<Reg>,
    recent: Vec<Reg>,
    /// Scratch definitions not yet consumed. Compiled code has almost no
    /// dead values; leaving them would create artificial output-less /
    /// disconnected mini-graph candidates.
    pending: Vec<Reg>,
    /// A designated high-fanout value for the current block: real code
    /// has many multi-consumer values, which limit how densely mini-graph
    /// candidates can pack (interior values must be single-consumer).
    hub: Option<Reg>,
    last_load_dest: Option<Reg>,
    /// Estimated committed instructions for one iteration of the body
    /// currently being generated (diamond sides weighted by 0.5).
    est: f64,
}

impl<'a> Generator<'a> {
    fn new(spec: &'a BenchmarkSpec, input: &'a InputSet) -> Generator<'a> {
        let mut pb = ProgramBuilder::new(format!("{}.{}", spec.name, input.name));
        let main = pb.func("main");
        let entry = pb.block(main);
        Generator {
            spec,
            input,
            rng: StdRng::seed_from_u64(spec.seed ^ 0x9e37_79b9_7f4a_7c15),
            pb,
            main,
            leaves: Vec::new(),
            cur: entry,
            next_scratch: SCRATCH_LO,
            reserved_scratch: None,
            recent: Vec::new(),
            pending: Vec::new(),
            hub: None,
            last_load_dest: None,
            est: 0.0,
        }
    }

    fn generate(mut self) -> Workload {
        self.gen_leaves();
        self.gen_init();
        let nests = self.spec.params.loop_nests;
        for nest in 0..nests {
            self.gen_nest(nest);
        }
        self.push(Instruction::halt());
        let init_mem = self.build_init_mem();
        let program = self
            .pb
            .build()
            .expect("generator emits structurally valid programs");
        Workload { program, init_mem }
    }

    // ----- helpers -----

    fn push(&mut self, inst: Instruction) {
        self.pb.push(self.cur, inst);
    }

    /// Seals the current block with a fall-through edge into a fresh block
    /// and makes the fresh block current. Block-local operand state resets.
    fn seal_to_new(&mut self) -> BlockId {
        let next = self.pb.block(self.main);
        self.pb.set_fallthrough(self.cur, next);
        self.cur = next;
        self.enter_block();
        next
    }

    fn enter_block(&mut self) {
        self.recent.clear();
        self.pending.clear();
        self.hub = None;
        self.last_load_dest = None;
    }

    fn fresh(&mut self) -> Reg {
        loop {
            let r = Reg::new(self.next_scratch);
            self.next_scratch += 1;
            if self.next_scratch > SCRATCH_HI {
                self.next_scratch = SCRATCH_LO;
            }
            if self.reserved_scratch != Some(r) {
                return r;
            }
        }
    }

    fn note_def(&mut self, r: Reg) {
        if self.hub.is_none() {
            self.hub = Some(r);
        }
        self.pending.retain(|&x| x != r); // overwritten before use
        self.pending.push(r);
        self.recent.push(r);
        if self.recent.len() > 4 {
            self.recent.remove(0);
        }
    }

    /// Picks an operand register: a recent in-block definition with
    /// probability `chain_bias`, otherwise a warm long-lived register.
    fn pick(&mut self) -> Reg {
        // Unconsumed values first: almost everything a compiler emits has
        // a consumer.
        if !self.pending.is_empty() && self.rng.gen_bool(0.45) {
            let i = self.rng.gen_range(0..self.pending.len());
            return self.consume(self.pending[i]);
        }
        // Multi-consumer "hub" values next: they throttle mini-graph
        // packing density the way real code's value fanout does.
        if let Some(hub) = self.hub {
            if self.rng.gen_bool(0.38) {
                return self.consume(hub);
            }
        }
        if !self.recent.is_empty() && self.rng.gen_bool(self.spec.params.chain_bias) {
            let r = self.recent[self.rng.gen_range(0..self.recent.len())];
            self.consume(r)
        } else {
            const WARM: [Reg; 6] = [R_CTR_OUT, R_ACC, R_LCG, R_STREAM, R_THRESH, R_SPARE];
            WARM[self.rng.gen_range(0..WARM.len())]
        }
    }

    /// Marks a register consumed (drops it from the pending list).
    fn consume(&mut self, r: Reg) -> Reg {
        self.pending.retain(|&x| x != r);
        r
    }

    fn data_mask(&self) -> i64 {
        ((self.spec.params.footprint_words - 1) << 3) as i64
    }

    /// Mask for the "hot" working set: a small, frequently revisited slice
    /// of the footprint (real programs exhibit strong temporal locality;
    /// without it every randomized access would miss the L1).
    fn hot_mask(&self) -> i64 {
        let hot_words = (self.spec.params.footprint_words / 16).clamp(128, 2048);
        ((hot_words - 1) << 3) as i64
    }

    /// Picks an offset mask for a randomized access: mostly the hot
    /// working set, occasionally the whole footprint.
    fn access_mask(&mut self) -> i64 {
        if self.rng.gen_bool(0.9) {
            self.hot_mask()
        } else {
            self.data_mask()
        }
    }

    // ----- program sections -----

    fn gen_leaves(&mut self) {
        for li in 0..self.spec.params.leaf_funcs {
            let f = self.pb.func(format!("leaf{li}"));
            let b = self.pb.block(f);
            let n = self.rng.gen_range(4..=9);
            let mut local: Vec<Reg> = vec![R_DATA, R_LCG, R_THRESH];
            for _ in 0..n {
                let dest = Reg::new(self.rng.gen_range(SCRATCH_LO..=SCRATCH_HI));
                let a = local[self.rng.gen_range(0..local.len())];
                let inst = match self.rng.gen_range(0..4) {
                    0 => Instruction::addi(dest, a, self.rng.gen_range(-64..64)),
                    1 => {
                        let b2 = local[self.rng.gen_range(0..local.len())];
                        Instruction::add(dest, a, b2)
                    }
                    2 => Instruction::alu_ri(Opcode::XorI, dest, a, self.rng.gen_range(0..255)),
                    _ => {
                        let b2 = local[self.rng.gen_range(0..local.len())];
                        Instruction::xor(dest, a, b2)
                    }
                };
                self.pb.push(b, inst);
                local.push(dest);
            }
            // Fold the leaf's work into its accumulator so it isn't dead.
            let last = *local.last().unwrap();
            self.pb
                .push(b, Instruction::add(R_LEAF_ACC, R_LEAF_ACC, last));
            self.pb.push(b, Instruction::ret());
            self.leaves.push(f);
        }
    }

    fn gen_init(&mut self) {
        let p = &self.spec.params;
        let thresh = (p.data_branch_bias * 512.0).round() as i64;
        let seed = (self.spec.seed ^ self.input.data_seed) as i64;
        let init = [
            Instruction::li(R_RING, RING_BASE as i64),
            Instruction::li(R_DATA, DATA_BASE as i64),
            Instruction::li(R_THRESH, thresh.max(1)),
            Instruction::li(R_LCGMUL, LCG_MUL),
            Instruction::li(R_LCG, seed | 1),
            Instruction::li(R_STREAM, DATA_BASE as i64),
            Instruction::li(R_ACC, 0),
            Instruction::li(R_LEAF_ACC, 0),
            Instruction::li(R_SPARE, 0x0f0f),
            Instruction::addi(R_CHASE, R_RING, 0),
        ];
        for i in init {
            self.push(i);
        }
    }

    fn gen_nest(&mut self, nest: usize) {
        let p = self.spec.params.clone();
        // Preheader: guard + counter init + pointer resets.
        let preheader = self.seal_to_new();
        let skip = self.nest_skipped(nest);
        self.push(Instruction::li(R_GUARD, if skip { 0 } else { 1 }));
        // Reset streaming state so nests are self-contained.
        let stream_start = self.rng.gen_range(0..(p.footprint_words as i64 * 8)) & !7;
        self.push(Instruction::li(R_STREAM, DATA_BASE as i64 + stream_start));
        self.push(Instruction::addi(R_CHASE, R_RING, 0));
        // Trip count placeholder: patched after the body is generated and
        // its dynamic length is known.
        self.push(Instruction::li(R_CTR_OUT, 1));
        let ctr_init_idx = self.pb.block_len(preheader) - 1;
        // Guard branch: target patched to the nest-end block below.
        self.push(Instruction::br(BrCond::Eq, R_GUARD, Reg::ZERO, preheader));

        let body_head = self.seal_to_new();
        self.est = 0.0;
        let segments = self.rng.gen_range(p.body_segments.0..=p.body_segments.1);
        let mut placed_inner = false;
        for _ in 0..segments {
            let roll: f64 = self.rng.gen();
            if p.allow_inner_loops && !placed_inner && roll < p.inner_loop_prob / segments as f64 {
                self.gen_inner_loop();
                placed_inner = true;
            } else if roll < p.diamond_prob {
                self.gen_diamond();
            } else if roll < p.diamond_prob + p.call_prob && !self.leaves.is_empty() {
                self.gen_call();
            } else {
                let n = self.rng.gen_range(p.block_len.0..=p.block_len.1);
                self.gen_straight(n);
            }
        }

        // Latch: decrement, loop back, fall through to the nest end.
        self.push(Instruction::addi(R_CTR_OUT, R_CTR_OUT, -1));
        self.push(Instruction::br(BrCond::Ne, R_CTR_OUT, Reg::ZERO, body_head));
        let latch = self.cur;
        self.est += 2.0;

        // Compute the trip count from the measured body estimate.
        let per_nest = (p.target_dyn as f64 * self.input.trip_scale()) / p.loop_nests as f64;
        let trips = (per_nest / self.est.max(1.0)).round().clamp(3.0, 50_000.0) as i64;
        self.patch_counter_init(preheader, ctr_init_idx, trips);

        let nest_end = self.seal_to_new();
        let _ = latch;
        self.pb.patch_branch_target(preheader, nest_end);
        // Keep the nest-end block non-empty regardless of what follows.
        self.push(Instruction::add(R_ACC, R_ACC, R_LEAF_ACC));
    }

    fn nest_skipped(&self, nest: usize) -> bool {
        let h = self
            .input
            .data_seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(nest as u64 ^ self.spec.seed)
            .wrapping_mul(0xff51_afd7_ed55_8ccd);
        (h >> 32) % 1000 < self.input.skip_per_mille as u64
    }

    fn patch_counter_init(&mut self, block: BlockId, idx: usize, trips: i64) {
        // Rewrite the preheader's placeholder `li R_CTR_OUT, 1`.
        self.pb
            .replace(block, idx, Instruction::li(R_CTR_OUT, trips.max(1)));
    }

    fn gen_inner_loop(&mut self) {
        let trips = self.spec.params.inner_trips.max(2) as i64;
        self.push(Instruction::li(R_CTR_IN, trips));
        let head = self.seal_to_new();
        let n = self
            .rng
            .gen_range(self.spec.params.block_len.0..=self.spec.params.block_len.1);
        let before = self.est;
        self.gen_straight(n);
        let body_cost = self.est - before;
        self.est = before + (body_cost + 2.0) * trips as f64;
        self.push(Instruction::addi(R_CTR_IN, R_CTR_IN, -1));
        self.push(Instruction::br(BrCond::Ne, R_CTR_IN, Reg::ZERO, head));
        self.seal_to_new();
    }

    fn gen_call(&mut self) {
        let leaf = self.leaves[self.rng.gen_range(0..self.leaves.len())];
        self.push(Instruction::call(leaf));
        self.est += 8.0; // call + typical leaf body + ret
        self.seal_to_new();
    }

    fn gen_diamond(&mut self) {
        // cond block (current) -> taken: then | fall: else -> join.
        // The condition is computed *early* (hoisted, as compilers
        // schedule it), then unrelated body work follows, and the branch
        // ends the block — giving the branch genuine slack that careless
        // aggregation with late body values can destroy.
        let p = self.spec.params.clone();
        let data_cond = self.rng.gen_bool(p.data_branch_prob);
        let cond_reg = if data_cond {
            // Entropy condition: a fresh pointer-chase load (a late,
            // possibly missing value), the last loaded value, or the
            // in-program LCG.
            let roll: f64 = self.rng.gen();
            let src = if roll < 0.5 {
                self.push(Instruction::load(R_CHASE, R_CHASE, 0));
                self.est += 1.0;
                R_CHASE
            } else {
                match self.last_load_dest {
                    Some(r) if roll < 0.75 => r,
                    _ => {
                        self.gen_lcg_step();
                        R_LCG
                    }
                }
            };
            let masked = self.fresh();
            self.push(Instruction::alu_ri(Opcode::AndI, masked, src, 511));
            let cmp = self.fresh();
            self.push(Instruction::alu_rr(Opcode::CmpLt, cmp, masked, R_THRESH));
            self.consume(masked);
            self.consume(cmp);
            self.est += 2.0;
            cmp
        } else {
            // Periodic counter condition: predictable by the gshare side.
            let masked = self.fresh();
            self.push(Instruction::alu_ri(Opcode::AndI, masked, R_CTR_OUT, 3));
            self.consume(masked);
            self.est += 1.0;
            masked
        };
        // Body filler between the (early) condition and the branch; the
        // condition register is protected from scratch reuse meanwhile.
        self.reserved_scratch = Some(cond_reg);
        let filler = self.rng.gen_range(2..=p.block_len.0.max(3));
        self.gen_straight(filler);
        self.reserved_scratch = None;
        // Placeholder target, patched to the then-block below.
        let cond_block = self.cur;
        self.push(Instruction::br(BrCond::Ne, cond_reg, Reg::ZERO, cond_block));
        self.est += 1.0;

        // Else side (fall-through).
        let _else_head = self.seal_to_new();
        let else_n = self.rng.gen_range(p.block_len.0..=p.block_len.1.min(8));
        let before = self.est;
        self.gen_straight(else_n);
        let else_cost = self.est - before;
        // Placeholder jmp target, patched to the join.
        self.push(Instruction::jmp(self.cur));
        let else_tail = self.cur;

        // Then side.
        let then_head = {
            let b = self.pb.block(self.main);
            self.cur = b;
            self.enter_block();
            b
        };
        self.pb.patch_branch_target(cond_block, then_head);
        let then_n = self.rng.gen_range(p.block_len.0..=p.block_len.1.min(8));
        let before_then = self.est;
        self.gen_straight(then_n);
        let then_cost = self.est - before_then;

        // Join: then falls through into it; else jumps to it.
        let join = self.seal_to_new();
        self.pb.patch_branch_target(else_tail, join);
        // Each side executes roughly half the time.
        self.est = before + (else_cost + 1.0) * 0.5 + then_cost * 0.5;
        // Keep the join block doing a little real work.
        self.push(Instruction::add(R_ACC, R_ACC, cond_reg));
        self.est += 1.0;
    }

    fn gen_lcg_step(&mut self) {
        self.push(Instruction::mul(R_LCG, R_LCG, R_LCGMUL));
        self.push(Instruction::addi(R_LCG, R_LCG, LCG_ADD));
        self.est += 2.0;
    }

    fn gen_straight(&mut self, n: usize) {
        let p = self.spec.params.clone();
        let mut emitted = 0usize;
        let mut trap_budget = 1usize;
        while emitted < n {
            let roll: f64 = self.rng.gen();
            if trap_budget > 0 && roll < 0.05 && n >= 4 {
                trap_budget -= 1;
                emitted += self.gen_update_pattern();
            } else if roll < p.mix.load {
                emitted += self.gen_load();
            } else if roll < p.mix.load + p.mix.store {
                emitted += self.gen_store();
            } else if roll < p.mix.load + p.mix.store + p.mix.mul {
                let d = self.fresh();
                let a = self.pick();
                let b = self.pick();
                self.push(Instruction::mul(d, a, b));
                self.note_def(d);
                emitted += 1;
            } else if self.rng.gen_bool(p.acc_prob) {
                // A two-deep link of the loop-carried accumulator chain:
                // recurrences of comparable height to the other serial
                // chains keep whole-iteration slack realistic.
                let a = self.pick();
                self.push(Instruction::add(R_ACC, R_ACC, a));
                let k = self.rng.gen_range(1..512);
                self.push(Instruction::alu_ri(Opcode::XorI, R_ACC, R_ACC, k));
                emitted += 2;
            } else {
                emitted += self.gen_alu();
            }
        }
        // Drain leftover unconsumed values into the accumulator so the
        // block defines (almost) no dead values.
        while self.pending.len() > 1 {
            let r = self.pending[0];
            self.consume(r);
            self.push(Instruction::add(R_ACC, R_ACC, r));
            emitted += 1;
        }
        self.est += emitted as f64;
    }

    /// A linked-structure update: compute the next element's address,
    /// store a (late) value into the current one, then load through the
    /// new address. The address computation's value is needed
    /// immediately, while the store's data typically arrives late — the
    /// adjacency is exactly Figure 4d's unbounded-serialization shape
    /// when an aggregator greedily groups the address op with the store.
    fn gen_update_pattern(&mut self) -> usize {
        let late = match self.last_load_dest {
            Some(r) if self.rng.gen_bool(0.5) => r,
            _ => R_LCG,
        };
        let t = self.fresh();
        let step = self.rng.gen_range(1..4) * 8;
        self.push(Instruction::addi(t, R_STREAM, step));
        let disp = self.rng.gen_range(0..4) * 8;
        self.push(Instruction::store(R_STREAM, late, disp));
        let d = self.fresh();
        self.push(Instruction::load(d, t, 0));
        self.consume(t);
        self.note_def(d);
        self.last_load_dest = Some(d);
        3
    }

    fn gen_alu(&mut self) -> usize {
        let d = self.fresh();
        let a = self.pick();
        let inst = match self.rng.gen_range(0..8) {
            0 => Instruction::addi(d, a, self.rng.gen_range(-128..128)),
            1 => Instruction::alu_ri(Opcode::XorI, d, a, self.rng.gen_range(0..1024)),
            2 => Instruction::alu_ri(Opcode::ShlI, d, a, self.rng.gen_range(1..8)),
            3 => Instruction::alu_ri(Opcode::ShrI, d, a, self.rng.gen_range(1..16)),
            4 => Instruction::add(d, a, self.pick()),
            5 => Instruction::sub(d, a, self.pick()),
            6 => Instruction::and(d, a, self.pick()),
            _ => Instruction::xor(d, a, self.pick()),
        };
        self.push(inst);
        self.note_def(d);
        1
    }

    /// Emits one load access pattern; returns instructions emitted.
    fn gen_load(&mut self) -> usize {
        let p = self.spec.params.clone();
        if self.rng.gen_bool(p.pointer_chase_prob) {
            // Pointer chase through the ring.
            self.push(Instruction::load(R_CHASE, R_CHASE, 0));
            self.last_load_dest = Some(R_CHASE);
            return 1;
        }
        if self.rng.gen_bool(0.7) {
            // Strided stream through a persistent pointer: compiled code
            // folds the displacement into the load, so the pattern is a
            // bare load plus a pointer bump — not an address-computation
            // chain.
            let d = self.fresh();
            let disp = self.rng.gen_range(0..p.stride_words.max(1) as i64) * 8;
            self.push(Instruction::load(d, R_STREAM, disp));
            let mut emitted = 1;
            if self.rng.gen_bool(0.6) {
                self.push(Instruction::addi(
                    R_STREAM,
                    R_STREAM,
                    (p.stride_words * 8) as i64,
                ));
                emitted += 1;
            }
            if self.rng.gen_bool(0.12) {
                // Wrap back into the footprint.
                let off = self.fresh();
                self.push(Instruction::alu_ri(
                    Opcode::AndI,
                    off,
                    R_STREAM,
                    self.data_mask(),
                ));
                self.push(Instruction::add(R_STREAM, R_DATA, off));
                emitted += 2;
            }
            self.note_def(d);
            self.last_load_dest = Some(d);
            emitted
        } else {
            // Randomized access via the LCG value, biased to the hot set.
            let mask = self.access_mask();
            let off = self.fresh();
            self.push(Instruction::alu_ri(Opcode::AndI, off, R_LCG, mask));
            let addr = self.fresh();
            self.push(Instruction::add(addr, R_DATA, off));
            let d = self.fresh();
            let disp = self.rng.gen_range(0..4) * 8;
            self.push(Instruction::load(d, addr, disp));
            self.note_def(d);
            self.last_load_dest = Some(d);
            3
        }
    }

    fn gen_store(&mut self) -> usize {
        if self.rng.gen_bool(0.6) {
            // Pointer-direct store near the stream.
            let data = self.pick();
            let disp = self.rng.gen_range(0..8) * 8;
            self.push(Instruction::store(R_STREAM, data, disp));
            1
        } else {
            // Computed store address via the LCG, biased to the hot set.
            let mask = self.access_mask();
            let off = self.fresh();
            self.push(Instruction::alu_ri(Opcode::AndI, off, R_LCG, mask));
            let addr = self.fresh();
            self.push(Instruction::add(addr, R_DATA, off));
            let data = self.pick();
            self.push(Instruction::store(addr, data, 0));
            3
        }
    }

    fn build_init_mem(&mut self) -> Vec<(u64, u64)> {
        let p = &self.spec.params;
        let mut mem = Vec::with_capacity(p.ring_words + p.footprint_words);
        // Ring: a random cyclic permutation of the ring slots, so chasing
        // visits every slot without hardware-predictable strides.
        let mut order: Vec<u64> = (0..p.ring_words as u64).collect();
        let mut rng = StdRng::seed_from_u64(self.spec.seed ^ self.input.data_seed);
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        for w in 0..order.len() {
            let cur = order[w];
            let next = order[(w + 1) % order.len()];
            mem.push((RING_BASE + cur * 8, RING_BASE + next * 8));
        }
        // Data region: pseudo-random values.
        for w in 0..p.footprint_words as u64 {
            let v = rng.gen::<u64>();
            mem.push((DATA_BASE + w * 8, v));
        }
        mem
    }
}

#[cfg(test)]
mod tests {
    use crate::exec::Executor;
    use crate::suite::{suite, BenchmarkSpec, Suite};

    #[test]
    fn generation_is_deterministic() {
        let spec = BenchmarkSpec::new(Suite::MiBench, "sha");
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a.program.static_count(), b.program.static_count());
        assert_eq!(a.init_mem, b.init_mem);
    }

    #[test]
    fn generation_is_deterministic_across_threads() {
        // The sweep runner generates workloads concurrently; generation
        // must depend only on the spec's seed, never on thread identity
        // or interleaving.
        let spec = BenchmarkSpec::new(Suite::MiBench, "sha");
        let here = format!("{:?}", spec.generate().program);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let spec = spec.clone();
                std::thread::spawn(move || format!("{:?}", spec.generate().program))
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), here);
        }
    }

    #[test]
    fn generated_programs_validate_and_run() {
        for spec in suite().into_iter().take(8) {
            let w = spec.generate();
            let exec = Executor::new(&w.program).with_limit(2_000_000);
            let (trace, _) = exec.run_with_mem(&w.init_mem).unwrap();
            assert!(!trace.truncated, "{} truncated", spec.name);
            assert!(
                trace.len() > 1000,
                "{} too short: {}",
                spec.name,
                trace.len()
            );
        }
    }

    #[test]
    fn dynamic_length_near_target() {
        let spec = BenchmarkSpec::new(Suite::MediaBench, "jpeg_enc");
        let w = spec.generate();
        let (trace, _) = Executor::new(&w.program)
            .with_limit(5_000_000)
            .run_with_mem(&w.init_mem)
            .unwrap();
        let target = spec.params.target_dyn as f64;
        let got = trace.len() as f64;
        assert!(
            got > target * 0.4 && got < target * 2.5,
            "dynamic length {got} vs target {target}"
        );
    }

    #[test]
    fn inputs_change_behaviour_not_code() {
        let spec = BenchmarkSpec::new(Suite::SpecInt, "mcf");
        let a = spec.generate_with_input(&spec.primary_input());
        let b = spec.generate_with_input(&spec.alternate_input());
        assert_eq!(a.program.static_count(), b.program.static_count());
        let (ta, _) = Executor::new(&a.program)
            .with_limit(5_000_000)
            .run_with_mem(&a.init_mem)
            .unwrap();
        let (tb, _) = Executor::new(&b.program)
            .with_limit(5_000_000)
            .run_with_mem(&b.init_mem)
            .unwrap();
        assert_ne!(ta.len(), tb.len());
    }
}
