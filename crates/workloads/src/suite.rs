//! Benchmark suites and the 78-benchmark registry.
//!
//! The paper evaluates 78 benchmarks from SPECint2000, MediaBench,
//! CommBench, and MiBench. The synthetic analogues here reproduce each
//! suite's *character* — instruction mix, control behaviour, memory
//! footprint and access patterns — via per-suite base [`GenParams`] plus
//! deterministic per-benchmark jitter, so the population exhibits the
//! diversity the paper's S-curves depend on.

use crate::input::InputSet;
use crate::params::{GenParams, OpMix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Benchmark suite family.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Suite {
    /// SPECint2000-like: irregular control flow, pointer chasing, large
    /// footprints, hard-to-predict branches.
    SpecInt,
    /// MediaBench-like: long arithmetic blocks, regular loops, small hot
    /// footprints, predictable control.
    MediaBench,
    /// CommBench-like: streaming header/payload processing, strided
    /// access, moderate control.
    CommBench,
    /// MiBench-like: small embedded kernels, small footprints, short
    /// blocks.
    MiBench,
}

impl Suite {
    /// All suites, in the paper's order.
    pub const ALL: [Suite; 4] = [
        Suite::SpecInt,
        Suite::MediaBench,
        Suite::CommBench,
        Suite::MiBench,
    ];

    /// Suite display prefix.
    pub fn prefix(self) -> &'static str {
        match self {
            Suite::SpecInt => "spec",
            Suite::MediaBench => "media",
            Suite::CommBench => "comm",
            Suite::MiBench => "mib",
        }
    }

    /// The suite's base generation parameters, before per-benchmark
    /// jitter.
    pub fn base_params(self) -> GenParams {
        match self {
            Suite::SpecInt => GenParams {
                loop_nests: 8,
                allow_inner_loops: true,
                inner_loop_prob: 0.35,
                inner_trips: 6,
                body_segments: (4, 7),
                block_len: (4, 9),
                diamond_prob: 0.40,
                call_prob: 0.12,
                leaf_funcs: 3,
                chain_bias: 0.42,
                acc_prob: 0.13,
                mix: OpMix {
                    load: 0.24,
                    store: 0.09,
                    mul: 0.03,
                },
                data_branch_prob: 0.55,
                data_branch_bias: 0.45,
                pointer_chase_prob: 0.15,
                footprint_words: 1 << 15, // 256 KB: spills the 32KB L1
                ring_words: 1 << 12,      // 32 KB chase ring: L1-capacity, miss-prone
                stride_words: 5,
                target_dyn: 120_000,
            },
            Suite::MediaBench => GenParams {
                loop_nests: 6,
                allow_inner_loops: true,
                inner_loop_prob: 0.5,
                inner_trips: 12,
                body_segments: (4, 8),
                block_len: (7, 16),
                diamond_prob: 0.15,
                call_prob: 0.06,
                leaf_funcs: 2,
                chain_bias: 0.45,
                acc_prob: 0.11,
                mix: OpMix {
                    load: 0.20,
                    store: 0.12,
                    mul: 0.06,
                },
                data_branch_prob: 0.20,
                data_branch_bias: 0.12,
                pointer_chase_prob: 0.05,
                footprint_words: 1 << 12, // 32 KB: mostly L1-resident
                ring_words: 1 << 9,
                stride_words: 1,
                target_dyn: 100_000,
            },
            Suite::CommBench => GenParams {
                loop_nests: 7,
                allow_inner_loops: true,
                inner_loop_prob: 0.4,
                inner_trips: 8,
                body_segments: (3, 6),
                block_len: (5, 12),
                diamond_prob: 0.25,
                call_prob: 0.08,
                leaf_funcs: 2,
                chain_bias: 0.38,
                acc_prob: 0.11,
                mix: OpMix {
                    load: 0.22,
                    store: 0.11,
                    mul: 0.02,
                },
                data_branch_prob: 0.30,
                data_branch_bias: 0.30,
                pointer_chase_prob: 0.08,
                footprint_words: 1 << 14, // 128 KB streaming
                ring_words: 1 << 10,
                stride_words: 3,
                target_dyn: 90_000,
            },
            Suite::MiBench => GenParams {
                loop_nests: 6,
                allow_inner_loops: true,
                inner_loop_prob: 0.3,
                inner_trips: 6,
                body_segments: (3, 5),
                block_len: (3, 8),
                diamond_prob: 0.28,
                call_prob: 0.10,
                leaf_funcs: 2,
                chain_bias: 0.40,
                acc_prob: 0.13,
                mix: OpMix {
                    load: 0.20,
                    store: 0.08,
                    mul: 0.04,
                },
                data_branch_prob: 0.30,
                data_branch_bias: 0.28,
                pointer_chase_prob: 0.09,
                footprint_words: 1 << 11, // 16 KB: L1-resident
                ring_words: 1 << 9,
                stride_words: 3,
                target_dyn: 60_000,
            },
        }
    }

    /// The primary input set used by benchmarks of this suite (SPEC
    /// self-trains on `train`, the embedded suites on their largest
    /// available input, as in the paper).
    pub fn primary_input(self) -> InputSet {
        match self {
            Suite::SpecInt => InputSet::primary(),
            _ => InputSet {
                name: "large".into(),
                ..InputSet::primary()
            },
        }
    }

    /// The cross-training input set (`ref` for SPEC, `small` for the
    /// embedded suites).
    pub fn alternate_input(self) -> InputSet {
        match self {
            Suite::SpecInt => InputSet::alternate(),
            _ => InputSet {
                name: "small".into(),
                trip_scale_pct: 60,
                ..InputSet::alternate()
            },
        }
    }
}

impl fmt::Display for Suite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Suite::SpecInt => "SPECint2000",
            Suite::MediaBench => "MediaBench",
            Suite::CommBench => "CommBench",
            Suite::MiBench => "MiBench",
        };
        f.write_str(s)
    }
}

/// A benchmark: a named, seeded point in a suite's generation space.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkSpec {
    /// Full benchmark name, e.g. `spec_gcc` or `mib_adpcm_c`.
    pub name: String,
    /// Owning suite.
    pub suite: Suite,
    /// Generation seed (derives structure, mixes, and trip counts).
    pub seed: u64,
    /// Generation parameters after per-benchmark jitter.
    pub params: GenParams,
}

impl BenchmarkSpec {
    /// Creates the spec for a named benchmark of a suite, applying
    /// deterministic per-benchmark jitter to the suite's base parameters.
    pub fn new(suite: Suite, short_name: &str) -> BenchmarkSpec {
        let name = format!("{}_{}", suite.prefix(), short_name);
        let seed = fnv1a(name.as_bytes());
        let mut rng = StdRng::seed_from_u64(seed);
        let mut p = suite.base_params();

        // Jitter: structural knobs scale by ~±35%, probabilities by ±40%,
        // footprints by a factor of 1/2..2. Deterministic in the name.
        let jf = |rng: &mut StdRng, lo: f64, hi: f64| rng.gen_range(lo..hi);
        p.loop_nests = ((p.loop_nests as f64) * jf(&mut rng, 0.7, 1.4))
            .round()
            .max(2.0) as usize;
        p.body_segments.1 = (p.body_segments.1 as f64 * jf(&mut rng, 0.8, 1.3)).round() as usize;
        p.body_segments.1 = p.body_segments.1.max(p.body_segments.0);
        p.block_len.1 = (p.block_len.1 as f64 * jf(&mut rng, 0.8, 1.3)).round() as usize;
        p.block_len.1 = p.block_len.1.max(p.block_len.0);
        p.diamond_prob = (p.diamond_prob * jf(&mut rng, 0.6, 1.4)).min(0.7);
        p.chain_bias = (p.chain_bias * jf(&mut rng, 0.75, 1.25)).min(0.85);
        p.acc_prob = (p.acc_prob * jf(&mut rng, 0.6, 1.5)).min(0.4);
        p.mix.load = (p.mix.load * jf(&mut rng, 0.7, 1.3)).min(0.35);
        p.mix.store = (p.mix.store * jf(&mut rng, 0.7, 1.3)).min(0.2);
        p.mix.mul = (p.mix.mul * jf(&mut rng, 0.5, 1.6)).min(0.12);
        p.data_branch_prob = (p.data_branch_prob * jf(&mut rng, 0.6, 1.4)).min(0.9);
        p.data_branch_bias = (p.data_branch_bias * jf(&mut rng, 0.6, 1.5)).min(0.5);
        p.pointer_chase_prob = (p.pointer_chase_prob * jf(&mut rng, 0.5, 1.6)).min(0.6);
        let shift: i32 = rng.gen_range(-1..=1);
        p.footprint_words = shift_pow2(p.footprint_words, shift);
        p.ring_words = shift_pow2(p.ring_words, rng.gen_range(-1..=1)).min(p.footprint_words);
        p.inner_loop_prob = (p.inner_loop_prob * jf(&mut rng, 0.7, 1.3)).min(0.8);
        p.target_dyn = ((p.target_dyn as f64) * jf(&mut rng, 0.75, 1.35)) as usize;
        debug_assert!(p.is_valid(), "jittered params invalid for {name}");

        BenchmarkSpec {
            name,
            suite,
            seed,
            params: p,
        }
    }

    /// The input set the benchmark self-trains on.
    pub fn primary_input(&self) -> InputSet {
        self.suite.primary_input()
    }

    /// The input set used for cross-input studies.
    pub fn alternate_input(&self) -> InputSet {
        self.suite.alternate_input()
    }
}

fn shift_pow2(v: usize, shift: i32) -> usize {
    match shift {
        i32::MIN..=-1 => (v >> shift.unsigned_abs()).max(256),
        0 => v,
        _ => (v << shift as usize).min(1 << 17),
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

const SPEC_NAMES: [&str; 12] = [
    "gzip", "vpr", "gcc", "mcf", "crafty", "parser", "eon", "perlbmk", "gap", "vortex", "bzip2",
    "twolf",
];

const MEDIA_NAMES: [&str; 24] = [
    "adpcm_enc",
    "adpcm_dec",
    "epic",
    "unepic",
    "g721_enc",
    "g721_dec",
    "gs",
    "gsm_enc",
    "gsm_dec",
    "jpeg_enc",
    "jpeg_dec",
    "mesa_mipmap",
    "mesa_osdemo",
    "mesa_texgen",
    "mpeg2_enc",
    "mpeg2_dec",
    "pegwit_enc",
    "pegwit_dec",
    "pgp_enc",
    "pgp_dec",
    "rasta",
    "h263_enc",
    "h263_dec",
    "g728_enc",
];

const COMM_NAMES: [&str; 16] = [
    "rtr", "frag", "drr", "tcp", "cast_enc", "cast_dec", "zip_enc", "zip_dec", "reed_enc",
    "reed_dec", "jpeg_hdr", "crc", "md5", "ipchains", "url", "ssl_hs",
];

const MIB_NAMES: [&str; 26] = [
    "basicmath",
    "bitcount",
    "qsort",
    "susan_s",
    "susan_e",
    "susan_c",
    "cjpeg",
    "djpeg",
    "lame",
    "tiff2bw",
    "tiff2rgba",
    "tiffdither",
    "tiffmedian",
    "dijkstra",
    "patricia",
    "ispell",
    "rsynth",
    "stringsearch",
    "blowfish_e",
    "blowfish_d",
    "sha",
    "adpcm_c",
    "adpcm_d",
    "crc32",
    "fft",
    "gsm_toast",
];

/// The full 78-benchmark registry: 12 SPECint + 24 MediaBench +
/// 16 CommBench + 26 MiBench analogues.
pub fn suite() -> Vec<BenchmarkSpec> {
    let mut v = Vec::with_capacity(78);
    v.extend(
        SPEC_NAMES
            .iter()
            .map(|n| BenchmarkSpec::new(Suite::SpecInt, n)),
    );
    v.extend(
        MEDIA_NAMES
            .iter()
            .map(|n| BenchmarkSpec::new(Suite::MediaBench, n)),
    );
    v.extend(
        COMM_NAMES
            .iter()
            .map(|n| BenchmarkSpec::new(Suite::CommBench, n)),
    );
    v.extend(
        MIB_NAMES
            .iter()
            .map(|n| BenchmarkSpec::new(Suite::MiBench, n)),
    );
    v
}

/// Looks up a benchmark by full name (e.g. `"mib_adpcm_c"`).
pub fn benchmark(name: &str) -> Option<BenchmarkSpec> {
    suite().into_iter().find(|b| b.name == name)
}

/// The short-running benchmark used for the paper's exhaustive limit
/// study (Figure 8): the `adpcm.c` analogue.
pub fn limit_study_benchmark() -> BenchmarkSpec {
    let mut spec = benchmark("mib_adpcm_c").expect("registry contains mib_adpcm_c");
    // The limit study wants a short, single-region program.
    spec.params.target_dyn = 25_000;
    spec
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_78_unique_benchmarks() {
        let all = suite();
        assert_eq!(all.len(), 78);
        let mut names: Vec<&str> = all.iter().map(|b| b.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 78);
    }

    #[test]
    fn suite_counts_match_paper_families() {
        let all = suite();
        let count = |s: Suite| all.iter().filter(|b| b.suite == s).count();
        assert_eq!(count(Suite::SpecInt), 12);
        assert_eq!(count(Suite::MediaBench), 24);
        assert_eq!(count(Suite::CommBench), 16);
        assert_eq!(count(Suite::MiBench), 26);
    }

    #[test]
    fn specs_are_deterministic() {
        let a = BenchmarkSpec::new(Suite::SpecInt, "gcc");
        let b = BenchmarkSpec::new(Suite::SpecInt, "gcc");
        assert_eq!(a, b);
    }

    #[test]
    fn different_benchmarks_get_different_params() {
        let a = BenchmarkSpec::new(Suite::SpecInt, "gcc");
        let b = BenchmarkSpec::new(Suite::SpecInt, "mcf");
        assert_ne!(a.seed, b.seed);
        assert_ne!(a.params, b.params);
    }

    #[test]
    fn all_jittered_params_are_valid() {
        for b in suite() {
            assert!(b.params.is_valid(), "invalid params for {}", b.name);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(benchmark("spec_mcf").is_some());
        assert!(benchmark("nonexistent").is_none());
        assert_eq!(limit_study_benchmark().suite, Suite::MiBench);
    }

    #[test]
    fn embedded_suites_use_large_small_inputs() {
        let m = BenchmarkSpec::new(Suite::MiBench, "sha");
        assert_eq!(m.primary_input().name, "large");
        assert_eq!(m.alternate_input().name, "small");
        let s = BenchmarkSpec::new(Suite::SpecInt, "gap");
        assert_eq!(s.primary_input().name, "train");
        assert_eq!(s.alternate_input().name, "ref");
    }
}
