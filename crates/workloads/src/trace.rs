//! Committed-path execution traces.

use mg_isa::{Program, StaticId};
use serde::{Deserialize, Serialize};

/// One committed dynamic instruction.
///
/// The trace is deliberately thin: opcode, operands, and layout come from
/// the [`Program`] via the `id`; the trace adds only the execution-specific
/// facts the timing model cannot derive statically.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct DynInst {
    /// The static instruction executed.
    pub id: StaticId,
    /// Effective address, for loads and stores (0 otherwise).
    pub addr: u64,
    /// For control transfers: whether the transfer left the fall-through
    /// path (unconditional transfers are always `true`). `false` for
    /// non-control instructions.
    pub taken: bool,
}

/// A committed-path instruction trace plus summary counts.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Trace {
    /// The committed instructions, in program order.
    pub insts: Vec<DynInst>,
    /// Whether execution was cut off at the dynamic-instruction limit.
    pub truncated: bool,
}

impl Trace {
    /// Number of committed instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Per-static-instruction dynamic execution counts.
    ///
    /// This is the frequency profile `f` used by mini-graph selection's
    /// coverage scores.
    pub fn static_freqs(&self, program: &Program) -> Vec<u64> {
        let mut freqs = vec![0u64; program.static_count()];
        for d in &self.insts {
            freqs[d.id.index()] += 1;
        }
        freqs
    }

    /// Fraction of committed instructions that are loads or stores.
    pub fn mem_fraction(&self, program: &Program) -> f64 {
        if self.insts.is_empty() {
            return 0.0;
        }
        let mem = self
            .insts
            .iter()
            .filter(|d| program.inst(d.id).op.is_mem())
            .count();
        mem as f64 / self.insts.len() as f64
    }

    /// Fraction of committed instructions that are conditional branches.
    pub fn branch_fraction(&self, program: &Program) -> f64 {
        if self.insts.is_empty() {
            return 0.0;
        }
        let br = self
            .insts
            .iter()
            .filter(|d| program.inst(d.id).op.is_cond_branch())
            .count();
        br as f64 / self.insts.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_isa::{Instruction, ProgramBuilder, Reg};

    #[test]
    fn static_freqs_counts_occurrences() {
        let mut pb = ProgramBuilder::new("t");
        let f = pb.func("main");
        let b = pb.block(f);
        pb.push(b, Instruction::li(Reg::R1, 1));
        pb.push(b, Instruction::halt());
        let p = pb.build().unwrap();
        let t = Trace {
            insts: vec![
                DynInst {
                    id: StaticId(0),
                    addr: 0,
                    taken: false,
                },
                DynInst {
                    id: StaticId(0),
                    addr: 0,
                    taken: false,
                },
                DynInst {
                    id: StaticId(1),
                    addr: 0,
                    taken: true,
                },
            ],
            truncated: false,
        };
        assert_eq!(t.static_freqs(&p), vec![2, 1]);
        assert_eq!(t.len(), 3);
    }
}
