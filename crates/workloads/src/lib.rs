//! Synthetic benchmark suites, input sets, and functional execution.
//!
//! The mini-graphs paper evaluates 78 benchmarks from SPECint2000,
//! MediaBench, CommBench, and MiBench. Those binaries are not available
//! here, so this crate provides deterministic *synthetic analogues*: a
//! [`suite`] of 78 generated programs whose per-suite character
//! (instruction mix, branch behaviour, memory footprint, loop structure)
//! matches the families the paper draws from. See `DESIGN.md` at the
//! repository root for the substitution rationale.
//!
//! The crate also provides the *functional* half of simulation: the
//! [`Executor`] runs a program architecturally and emits the
//! committed-path [`Trace`] that the timing simulator (`mg-sim`) replays.
//!
//! # Example
//!
//! ```
//! use mg_workloads::{suite, Executor};
//!
//! let spec = &suite()[0];
//! let workload = spec.generate();
//! let (trace, _state) = Executor::new(&workload.program)
//!     .with_limit(1_000_000)
//!     .run_with_mem(&workload.init_mem)
//!     .expect("generated programs run to completion");
//! assert!(!trace.is_empty());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod exec;
pub mod gen;
pub mod input;
pub mod params;
pub mod suite;
pub mod trace;

pub use exec::{ArchState, ExecError, Executor};
pub use gen::{Workload, DATA_BASE, RING_BASE};
pub use input::InputSet;
pub use params::{GenParams, OpMix};
pub use suite::{benchmark, limit_study_benchmark, suite, BenchmarkSpec, Suite};
pub use trace::{DynInst, Trace};

/// Commonly used items, for glob import via the facade prelude.
pub mod prelude {
    pub use crate::{
        benchmark, suite, ArchState, BenchmarkSpec, DynInst, Executor, InputSet, Suite, Trace,
        Workload,
    };
}

// The sweep runner hands these to worker threads by reference; keep them
// structurally thread-safe.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Workload>();
    assert_send_sync::<Trace>();
    assert_send_sync::<BenchmarkSpec>();
    assert_send_sync::<InputSet>();
};
