//! Functional (architectural) execution.
//!
//! Runs a [`Program`] to completion, producing the committed-path
//! [`Trace`] the timing simulator consumes. Mini-graph tags do not affect
//! functional semantics, so the same executor runs both singleton and
//! rewritten programs — a property the integration tests rely on to check
//! that the mini-graph rewriter preserves program behaviour.

use crate::trace::{DynInst, Trace};
use mg_isa::{op, BlockId, CfTarget, Opcode, Program, Reg};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Default cap on committed dynamic instructions.
pub const DEFAULT_DYN_LIMIT: usize = 50_000_000;

/// Problems encountered during functional execution.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ExecError {
    /// A `ret` executed with an empty call stack.
    ReturnFromMain(BlockId),
    /// Control fell off the end of a block with no successor.
    FellOffBlock(BlockId),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::ReturnFromMain(b) => write!(f, "return with empty call stack in {b}"),
            ExecError::FellOffBlock(b) => write!(f, "control fell off block {b}"),
        }
    }
}

impl Error for ExecError {}

/// Architectural machine state used by functional execution.
#[derive(Clone, Debug, Default)]
pub struct ArchState {
    /// Register file (index 0 is hardwired zero).
    pub regs: [u64; mg_isa::reg::NUM_ARCH_REGS],
    /// Data memory, word-addressed by byte address (sparse).
    pub mem: HashMap<u64, u64>,
}

impl ArchState {
    /// Reads a register (the zero register reads 0).
    pub fn read(&self, r: Reg) -> u64 {
        if r.is_zero() {
            0
        } else {
            self.regs[r.index()]
        }
    }

    /// Writes a register (writes to the zero register are discarded).
    pub fn write(&mut self, r: Reg, v: u64) {
        if !r.is_zero() {
            self.regs[r.index()] = v;
        }
    }

    /// Loads a memory word (uninitialized memory reads 0).
    pub fn load(&self, addr: u64) -> u64 {
        self.mem.get(&addr).copied().unwrap_or(0)
    }

    /// Stores a memory word.
    pub fn store(&mut self, addr: u64, v: u64) {
        self.mem.insert(addr, v);
    }
}

/// Functional executor.
#[derive(Debug)]
pub struct Executor<'a> {
    program: &'a Program,
    limit: usize,
}

impl<'a> Executor<'a> {
    /// Creates an executor with the default dynamic-instruction limit.
    pub fn new(program: &'a Program) -> Executor<'a> {
        Executor {
            program,
            limit: DEFAULT_DYN_LIMIT,
        }
    }

    /// Overrides the dynamic-instruction limit. Execution past the limit
    /// marks the trace truncated rather than failing.
    pub fn with_limit(mut self, limit: usize) -> Executor<'a> {
        self.limit = limit;
        self
    }

    /// Runs the program with pre-initialized ("loader-placed") data
    /// memory, as produced by the workload generator.
    ///
    /// # Errors
    ///
    /// Same conditions as [`run`](Executor::run).
    pub fn run_with_mem(&self, init: &[(u64, u64)]) -> Result<(Trace, ArchState), ExecError> {
        let mut st = ArchState::default();
        st.mem.extend(init.iter().copied());
        self.run_from(st)
    }

    /// Runs the program from its entry function to `halt` (or the limit),
    /// returning the committed trace and the final architectural state.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] on structurally unrunnable control flow
    /// (return from main, falling off a successor-less block). Validated
    /// programs from the workload generator never trigger these.
    pub fn run(&self) -> Result<(Trace, ArchState), ExecError> {
        self.run_from(ArchState::default())
    }

    /// Runs from an explicit initial architectural state.
    ///
    /// # Errors
    ///
    /// Same conditions as [`run`](Executor::run).
    pub fn run_from(&self, initial: ArchState) -> Result<(Trace, ArchState), ExecError> {
        let program = self.program;
        let mut st = initial;
        let mut trace = Trace::default();
        let mut call_stack: Vec<BlockId> = Vec::new();

        let entry = program.func(program.entry_func()).entry;
        let mut block = entry;
        let mut idx = 0usize;

        loop {
            if trace.insts.len() >= self.limit {
                trace.truncated = true;
                break;
            }
            let bb = program.block(block);
            if idx >= bb.insts.len() {
                match bb.fallthrough {
                    Some(next) => {
                        block = next;
                        idx = 0;
                        continue;
                    }
                    None => return Err(ExecError::FellOffBlock(block)),
                }
            }
            let id = program.id_of(block, idx);
            let inst = &bb.insts[idx];
            let a = inst.src1.map(|r| st.read(r)).unwrap_or(0);
            let b = inst.src2.map(|r| st.read(r)).unwrap_or(0);

            let mut dyn_inst = DynInst {
                id,
                addr: 0,
                taken: false,
            };

            match inst.op {
                Opcode::Load => {
                    let addr = a.wrapping_add(inst.imm as u64);
                    dyn_inst.addr = addr;
                    let v = st.load(addr);
                    st.write(inst.dest.unwrap(), v);
                    idx += 1;
                }
                Opcode::Store => {
                    let addr = a.wrapping_add(inst.imm as u64);
                    dyn_inst.addr = addr;
                    st.store(addr, b);
                    idx += 1;
                }
                Opcode::Br(cond) => {
                    let taken = cond.eval(a, b);
                    dyn_inst.taken = taken;
                    if taken {
                        let Some(CfTarget::Block(t)) = inst.target else {
                            unreachable!("validated branch has a block target")
                        };
                        block = t;
                        idx = 0;
                    } else {
                        match bb.fallthrough {
                            Some(next) => {
                                block = next;
                                idx = 0;
                            }
                            None => return Err(ExecError::FellOffBlock(block)),
                        }
                    }
                }
                Opcode::Jmp => {
                    dyn_inst.taken = true;
                    let Some(CfTarget::Block(t)) = inst.target else {
                        unreachable!("validated jump has a block target")
                    };
                    block = t;
                    idx = 0;
                }
                Opcode::Call => {
                    dyn_inst.taken = true;
                    let Some(CfTarget::Func(f)) = inst.target else {
                        unreachable!("validated call has a function target")
                    };
                    let fall = bb
                        .fallthrough
                        .expect("validated call block has a fall-through");
                    call_stack.push(fall);
                    // The link register holds an opaque return token; the
                    // executor tracks the actual return point on its own
                    // stack, mirroring how real linkage is opaque to
                    // dataflow.
                    st.write(Reg::LINK, program.pc_of(program.id_of(fall, 0)));
                    block = program.func(f).entry;
                    idx = 0;
                }
                Opcode::Ret => {
                    dyn_inst.taken = true;
                    match call_stack.pop() {
                        Some(fall) => {
                            block = fall;
                            idx = 0;
                        }
                        None => return Err(ExecError::ReturnFromMain(block)),
                    }
                }
                Opcode::Halt => {
                    dyn_inst.taken = true;
                }
                Opcode::Nop => {
                    idx += 1;
                }
                alu => {
                    let v = op::eval_alu(alu, a, b, inst.imm);
                    if let Some(d) = inst.dest {
                        st.write(d, v);
                    }
                    idx += 1;
                }
            }
            let halted = matches!(inst.op, Opcode::Halt);
            trace.insts.push(dyn_inst);
            if halted {
                break;
            }
        }
        Ok((trace, st))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_isa::{BrCond, Instruction, ProgramBuilder};

    fn run(p: &Program) -> (Trace, ArchState) {
        Executor::new(p).run().unwrap()
    }

    #[test]
    fn straight_line_arithmetic() {
        let mut pb = ProgramBuilder::new("t");
        let f = pb.func("main");
        let b = pb.block(f);
        pb.push(b, Instruction::li(Reg::R1, 6));
        pb.push(b, Instruction::li(Reg::R2, 7));
        pb.push(b, Instruction::mul(Reg::R3, Reg::R1, Reg::R2));
        pb.push(b, Instruction::halt());
        let p = pb.build().unwrap();
        let (trace, st) = run(&p);
        assert_eq!(st.read(Reg::R3), 42);
        assert_eq!(trace.len(), 4);
        assert!(!trace.truncated);
    }

    #[test]
    fn loop_executes_expected_iterations() {
        let mut pb = ProgramBuilder::new("loop");
        let f = pb.func("main");
        let head = pb.block(f);
        let body = pb.block(f);
        let exit = pb.block(f);
        pb.push(head, Instruction::li(Reg::R1, 5));
        pb.push(head, Instruction::li(Reg::R2, 0));
        pb.set_fallthrough(head, body);
        pb.push(body, Instruction::addi(Reg::R2, Reg::R2, 3));
        pb.push(body, Instruction::addi(Reg::R1, Reg::R1, -1));
        pb.push(body, Instruction::br(BrCond::Ne, Reg::R1, Reg::ZERO, body));
        pb.set_fallthrough(body, exit);
        pb.push(exit, Instruction::halt());
        let p = pb.build().unwrap();
        let (trace, st) = run(&p);
        assert_eq!(st.read(Reg::R2), 15);
        // 2 init + 5 iterations of 3 + halt
        assert_eq!(trace.len(), 2 + 15 + 1);
        // Branch taken 4 times, not-taken once.
        let takens: Vec<bool> = trace
            .insts
            .iter()
            .filter(|d| p.inst(d.id).op.is_cond_branch())
            .map(|d| d.taken)
            .collect();
        assert_eq!(takens, vec![true, true, true, true, false]);
    }

    #[test]
    fn memory_round_trip() {
        let mut pb = ProgramBuilder::new("mem");
        let f = pb.func("main");
        let b = pb.block(f);
        pb.push(b, Instruction::li(Reg::R1, 0x2000));
        pb.push(b, Instruction::li(Reg::R2, 99));
        pb.push(b, Instruction::store(Reg::R1, Reg::R2, 8));
        pb.push(b, Instruction::load(Reg::R3, Reg::R1, 8));
        pb.push(b, Instruction::halt());
        let p = pb.build().unwrap();
        let (trace, st) = run(&p);
        assert_eq!(st.read(Reg::R3), 99);
        let addrs: Vec<u64> = trace
            .insts
            .iter()
            .filter(|d| p.inst(d.id).op.is_mem())
            .map(|d| d.addr)
            .collect();
        assert_eq!(addrs, vec![0x2008, 0x2008]);
    }

    #[test]
    fn call_and_return() {
        let mut pb = ProgramBuilder::new("call");
        let main = pb.func("main");
        let leaf = pb.func("leaf");
        let m0 = pb.block(main);
        let m1 = pb.block(main);
        let l0 = pb.block(leaf);
        pb.push(m0, Instruction::li(Reg::R4, 10));
        pb.push(m0, Instruction::call(leaf));
        pb.set_fallthrough(m0, m1);
        pb.push(m1, Instruction::addi(Reg::R5, Reg::R2, 1));
        pb.push(m1, Instruction::halt());
        pb.push(l0, Instruction::addi(Reg::R2, Reg::R4, 5));
        pb.push(l0, Instruction::ret());
        let p = pb.build().unwrap();
        let (_, st) = run(&p);
        assert_eq!(st.read(Reg::R2), 15);
        assert_eq!(st.read(Reg::R5), 16);
    }

    #[test]
    fn limit_truncates() {
        let mut pb = ProgramBuilder::new("inf");
        let f = pb.func("main");
        let b = pb.block(f);
        pb.push(b, Instruction::jmp(b));
        let p = pb.build().unwrap();
        let (trace, _) = Executor::new(&p).with_limit(10).run().unwrap();
        assert!(trace.truncated);
        assert_eq!(trace.len(), 10);
    }

    #[test]
    fn uninitialized_memory_reads_zero() {
        let mut pb = ProgramBuilder::new("zero");
        let f = pb.func("main");
        let b = pb.block(f);
        pb.push(b, Instruction::li(Reg::R1, 0x4000));
        pb.push(b, Instruction::load(Reg::R2, Reg::R1, 0));
        pb.push(b, Instruction::halt());
        let p = pb.build().unwrap();
        let (_, st) = run(&p);
        assert_eq!(st.read(Reg::R2), 0);
    }
}

#[cfg(test)]
mod error_path_tests {
    use super::*;
    use mg_isa::{Instruction, ProgramBuilder};

    #[test]
    fn return_from_main_is_reported() {
        let mut pb = ProgramBuilder::new("bad-ret");
        let f = pb.func("main");
        let b = pb.block(f);
        pb.push(b, Instruction::ret());
        let p = pb.build().unwrap();
        match Executor::new(&p).run() {
            Err(ExecError::ReturnFromMain(_)) => {}
            other => panic!("expected ReturnFromMain, got {other:?}"),
        }
    }

    #[test]
    fn error_display_is_informative() {
        let e = ExecError::ReturnFromMain(mg_isa::BlockId(3));
        assert!(e.to_string().contains("bb3"));
        let e2 = ExecError::FellOffBlock(mg_isa::BlockId(7));
        assert!(e2.to_string().contains("bb7"));
    }

    #[test]
    fn arch_state_zero_register_semantics() {
        let mut st = ArchState::default();
        st.write(Reg::ZERO, 99);
        assert_eq!(st.read(Reg::ZERO), 0);
        st.write(Reg::R5, 42);
        assert_eq!(st.read(Reg::R5), 42);
    }
}
