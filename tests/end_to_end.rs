//! Cross-crate integration tests: the full pipeline from benchmark
//! generation through selection, rewriting, and timing simulation.

use minigraphs::core::candidate::{enumerate, SelectionConfig};
use minigraphs::core::classify::{classify, Serialization};
use minigraphs::core::pipeline::{prepare, profile_workload};
use minigraphs::core::select::{Selector, SlackProfileModel, SpKind};
use minigraphs::sim::{simulate, MachineConfig, MgConfig, SimOptions};
use minigraphs::workloads::{benchmark, suite, Executor};

fn small(name: &str) -> minigraphs::workloads::BenchmarkSpec {
    let mut spec = benchmark(name).expect("benchmark exists");
    spec.params.target_dyn = 20_000;
    spec
}

#[test]
fn selector_pools_nest_structurally() {
    let spec = small("mib_dijkstra");
    let w = spec.generate();
    let pool = enumerate(&w.program, &SelectionConfig::default());
    assert!(!pool.is_empty());
    let all = Selector::StructAll.filter(&w.program, pool.clone());
    let bounded = Selector::StructBounded.filter(&w.program, pool.clone());
    let none = Selector::StructNone.filter(&w.program, pool.clone());
    assert_eq!(all.len(), pool.len());
    assert!(none.len() <= bounded.len());
    assert!(bounded.len() <= all.len());
    // Struct-None admits exactly the structurally safe candidates.
    for c in &none {
        assert!(!c.shape.potentially_serializing());
    }
    // Struct-Bounded rejects exactly the unbounded ones.
    for c in &bounded {
        assert_ne!(classify(&c.shape), Serialization::Unbounded);
    }
}

#[test]
fn slack_profile_is_between_none_and_all_in_coverage() {
    let spec = small("comm_crc");
    let w = spec.generate();
    let red = MachineConfig::reduced();
    let (_, freqs, slack) = profile_workload(&w, &red);
    let cfg = SelectionConfig::default();
    let all = prepare(&w.program, &freqs, &Selector::StructAll, &cfg);
    let none = prepare(&w.program, &freqs, &Selector::StructNone, &cfg);
    let sp = prepare(
        &w.program,
        &freqs,
        &Selector::SlackProfile(Default::default(), slack),
        &cfg,
    );
    assert!(none.est_coverage <= sp.est_coverage + 1e-9);
    assert!(sp.est_coverage <= all.est_coverage + 1e-9);
}

#[test]
fn sial_and_delay_variants_are_more_conservative_orderings() {
    let spec = small("spec_parser");
    let w = spec.generate();
    let red = MachineConfig::reduced();
    let (_, _freqs, slack) = profile_workload(&w, &red);
    let pool = enumerate(&w.program, &SelectionConfig::default());
    let count = |kind: SpKind| {
        Selector::SlackProfile(
            SlackProfileModel {
                kind,
                ..Default::default()
            },
            slack.clone(),
        )
        .filter(&w.program, pool.clone())
        .len()
    };
    // Delay-only rejects a superset of what the full model rejects (any
    // delayed output vs only unabsorbable delay).
    assert!(count(SpKind::DelayOnly) <= count(SpKind::Full));
}

#[test]
fn rewritten_programs_preserve_architectural_state() {
    for name in ["mib_fft", "media_epic", "comm_frag"] {
        let spec = small(name);
        let w = spec.generate();
        let red = MachineConfig::reduced();
        let (_, freqs, slack) = profile_workload(&w, &red);
        for selector in [
            Selector::StructAll,
            Selector::SlackProfile(Default::default(), slack),
        ] {
            let prepared = prepare(&w.program, &freqs, &selector, &SelectionConfig::default());
            let (t0, s0) = Executor::new(&w.program).run_with_mem(&w.init_mem).unwrap();
            let (t1, s1) = Executor::new(&prepared.program)
                .run_with_mem(&w.init_mem)
                .unwrap();
            assert_eq!(t0.len(), t1.len(), "{name}: dynamic length changed");
            assert_eq!(s0.regs[..31], s1.regs[..31], "{name}: registers diverged");
            assert_eq!(s0.mem, s1.mem, "{name}: memory diverged");
        }
    }
}

#[test]
fn committed_instructions_are_invariant_across_machines_and_schemes() {
    let spec = small("mib_bitcount");
    let w = spec.generate();
    let red = MachineConfig::reduced();
    let (trace, freqs, _) = profile_workload(&w, &red);
    let expected = trace.len() as u64;
    for m in [
        MachineConfig::two_way(),
        MachineConfig::reduced(),
        MachineConfig::baseline(),
        MachineConfig::eight_way(),
    ] {
        let r = simulate(&w.program, &trace, &m, SimOptions::default());
        assert!(!r.hit_cycle_cap);
        assert_eq!(r.stats.committed_instrs, expected, "machine {}", m.name);
    }
    // With mini-graphs embedded, the committed instruction count is
    // unchanged (handles expand to their constituents).
    let prepared = prepare(
        &w.program,
        &freqs,
        &Selector::StructAll,
        &Default::default(),
    );
    let (t, _) = Executor::new(&prepared.program)
        .run_with_mem(&w.init_mem)
        .unwrap();
    let r = simulate(
        &prepared.program,
        &t,
        &red.clone().with_mg(MgConfig::paper()),
        SimOptions::default(),
    );
    assert_eq!(r.stats.committed_instrs, expected);
    assert!(r.stats.mg_handles > 0);
}

#[test]
fn wider_machines_never_lose_meaningfully() {
    let spec = small("media_gs");
    let w = spec.generate();
    let (t, _) = Executor::new(&w.program).run_with_mem(&w.init_mem).unwrap();
    let two = simulate(
        &w.program,
        &t,
        &MachineConfig::two_way(),
        SimOptions::default(),
    );
    let four = simulate(
        &w.program,
        &t,
        &MachineConfig::baseline(),
        SimOptions::default(),
    );
    let eight = simulate(
        &w.program,
        &t,
        &MachineConfig::eight_way(),
        SimOptions::default(),
    );
    assert!(four.ipc() >= two.ipc() * 0.99);
    assert!(eight.ipc() >= four.ipc() * 0.99);
}

#[test]
fn whole_suite_generates_and_validates() {
    // Every registry entry must produce a structurally valid program with
    // candidates to offer.
    for spec in suite() {
        let w = spec.generate();
        assert!(w.program.static_count() > 50, "{} too small", spec.name);
        let pool = enumerate(&w.program, &SelectionConfig::default());
        assert!(!pool.is_empty(), "{} has no candidates", spec.name);
    }
}

#[test]
fn profiles_are_deterministic() {
    let spec = small("comm_url");
    let w = spec.generate();
    let red = MachineConfig::reduced();
    let (t1, f1, s1) = profile_workload(&w, &red);
    let (t2, f2, s2) = profile_workload(&w, &red);
    assert_eq!(t1.len(), t2.len());
    assert_eq!(f1, f2);
    assert_eq!(s1.per_static.len(), s2.per_static.len());
    for (a, b) in s1.per_static.iter().zip(s2.per_static.iter()) {
        assert_eq!(a.count, b.count);
        assert!((a.local_slack - b.local_slack).abs() < 1e-12);
        assert!((a.issue_rel - b.issue_rel).abs() < 1e-12);
    }
}

#[test]
fn mg_with_single_handle_per_cycle() {
    // Mini-graph machine with an extremely constrained MGT interface
    // stays deadlock-free and commits everything.
    let mut spec = benchmark("mib_qsort").unwrap();
    spec.params.target_dyn = 8_000;
    let w = spec.generate();
    let (trace, _) = Executor::new(&w.program).run_with_mem(&w.init_mem).unwrap();
    let freqs = trace.static_freqs(&w.program);
    let prepared = prepare(
        &w.program,
        &freqs,
        &Selector::StructAll,
        &Default::default(),
    );
    let (t, _) = Executor::new(&prepared.program)
        .run_with_mem(&w.init_mem)
        .unwrap();
    let cfg = MachineConfig::reduced().with_mg(MgConfig {
        max_mg_issue: 1,
        max_mem_mg_issue: 1,
        ..MgConfig::paper()
    });
    let r = simulate(&prepared.program, &t, &cfg, SimOptions::default());
    assert!(!r.hit_cycle_cap);
    assert_eq!(r.stats.committed_instrs, t.len() as u64);
    assert!(r.stats.mg_handles > 0);
}
