//! Property-based tests over the core invariants.
//!
//! Strategy: rather than synthesizing raw instruction soup (most of which
//! would be invalid), properties are driven through the workload
//! generator's seed space — every seed yields a structurally valid
//! program — plus randomized candidate subsets for the rewriter.

use minigraphs::core::candidate::{enumerate, Candidate, SelectionConfig};
use minigraphs::core::depgraph::{schedule_with_groups, BlockDeps};
use minigraphs::core::rewrite::{rewrite, ChosenInstance};
use minigraphs::core::select::greedy_select;
use minigraphs::isa::dataflow::RegSet;
use minigraphs::isa::{Program, Reg};
use minigraphs::workloads::{Executor, GenParams, InputSet, OpMix, Suite};
use proptest::prelude::*;

/// A small randomized benchmark spec driven by a seed.
fn program_for(seed: u64) -> (Program, Vec<(u64, u64)>) {
    let mut spec = minigraphs::workloads::BenchmarkSpec::new(
        match seed % 4 {
            0 => Suite::SpecInt,
            1 => Suite::MediaBench,
            2 => Suite::CommBench,
            _ => Suite::MiBench,
        },
        &format!("prop{seed}"),
    );
    spec.params.target_dyn = 4_000;
    spec.params.loop_nests = 2 + (seed % 3) as usize;
    let w = spec.generate_with_input(&InputSet::primary());
    (w.program, w.init_mem)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Generated programs execute deterministically.
    #[test]
    fn execution_is_deterministic(seed in 0u64..5000) {
        let (program, mem) = program_for(seed);
        let (t1, s1) = Executor::new(&program).run_with_mem(&mem).unwrap();
        let (t2, s2) = Executor::new(&program).run_with_mem(&mem).unwrap();
        prop_assert_eq!(t1.len(), t2.len());
        prop_assert_eq!(s1.regs, s2.regs);
    }

    /// Every enumerated candidate satisfies the mini-graph interface.
    #[test]
    fn candidates_satisfy_interface(seed in 0u64..5000) {
        let (program, _) = program_for(seed);
        let cfg = SelectionConfig::default();
        for c in enumerate(&program, &cfg) {
            prop_assert!(c.len() >= 2 && c.len() <= cfg.max_size);
            prop_assert!(c.shape.ext_inputs.len() <= cfg.max_ext_inputs);
            prop_assert!(c.shape.total_latency() <= cfg.max_latency);
            prop_assert!(c.positions.windows(2).all(|w| w[0] < w[1]));
            // At most one memory op, control only last.
            if let Some(p) = c.shape.control {
                prop_assert_eq!(p as usize, c.len() - 1);
            }
        }
    }

    /// Rewriting with a random subset of greedily chosen instances
    /// preserves architectural semantics and dynamic instruction count.
    #[test]
    fn rewrite_preserves_semantics(seed in 0u64..5000, keep_mask in any::<u64>()) {
        let (program, mem) = program_for(seed);
        let (trace, s0) = Executor::new(&program).run_with_mem(&mem).unwrap();
        let freqs = trace.static_freqs(&program);
        let pool = enumerate(&program, &SelectionConfig::default());
        let result = greedy_select(&program, &pool, &freqs, &SelectionConfig::default());
        // Drop a pseudo-random subset of the chosen instances.
        let chosen: Vec<ChosenInstance> = result
            .chosen
            .into_iter()
            .enumerate()
            .filter(|(i, _)| keep_mask & (1 << (i % 64)) != 0)
            .map(|(_, c)| c)
            .collect();
        let rewritten = rewrite(&program, &chosen);
        let (t1, s1) = Executor::new(&rewritten).run_with_mem(&mem).unwrap();
        prop_assert_eq!(trace.len(), t1.len());
        prop_assert_eq!(&s0.regs[..31], &s1.regs[..31]);
        prop_assert_eq!(s0.mem, s1.mem);
    }

    /// Greedy selection yields disjoint instances within budget.
    #[test]
    fn selection_is_disjoint_and_budgeted(seed in 0u64..5000, budget in 1usize..64) {
        let (program, mem) = program_for(seed);
        let (trace, _) = Executor::new(&program).run_with_mem(&mem).unwrap();
        let freqs = trace.static_freqs(&program);
        let pool = enumerate(&program, &SelectionConfig::default());
        let cfg = SelectionConfig { mgt_budget: budget, ..Default::default() };
        let result = greedy_select(&program, &pool, &freqs, &cfg);
        prop_assert!(result.templates <= budget);
        let mut used = std::collections::HashSet::new();
        for c in &result.chosen {
            prop_assert!((c.template as usize) < result.templates);
            for &p in &c.candidate.positions {
                prop_assert!(used.insert((c.candidate.block.0, p)), "overlap");
            }
        }
    }

    /// `schedule_with_groups` emits a permutation that keeps every group
    /// contiguous and respects the dependence graph.
    #[test]
    fn grouped_schedules_are_valid(seed in 0u64..5000) {
        let (program, _) = program_for(seed);
        let pool = enumerate(&program, &SelectionConfig::default());
        // Group the first few pairwise-disjoint candidates of one block.
        let Some(first) = pool.first() else { return Ok(()); };
        let block = first.block;
        let mut groups: Vec<&Candidate> = Vec::new();
        for c in pool.iter().filter(|c| c.block == block) {
            if groups.iter().all(|g| g.positions.iter().all(|p| !c.positions.contains(p))) {
                groups.push(c);
                if groups.len() == 3 { break; }
            }
        }
        let deps = BlockDeps::build(program.block(block));
        let slices: Vec<&[usize]> = groups.iter().map(|g| g.positions.as_slice()).collect();
        if let Some(order) = schedule_with_groups(&deps, &slices) {
            // Permutation check.
            let mut sorted = order.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0..program.block(block).insts.len()).collect::<Vec<_>>());
            // Contiguity check.
            for g in &slices {
                let idxs: Vec<usize> = g
                    .iter()
                    .map(|p| order.iter().position(|x| x == p).unwrap())
                    .collect();
                for w in idxs.windows(2) {
                    prop_assert_eq!(w[1], w[0] + 1, "group split in {:?}", order);
                }
            }
            // Dependence check.
            for (i, &p) in order.iter().enumerate() {
                for &succ in deps.succs(p) {
                    let j = order.iter().position(|&x| x == succ).unwrap();
                    prop_assert!(j > i, "dependence violated");
                }
            }
        }
    }

    /// RegSet behaves like a set of registers.
    #[test]
    fn regset_models_a_set(bits in any::<u32>()) {
        let mut s = RegSet::EMPTY;
        let mut reference = std::collections::BTreeSet::new();
        for r in Reg::all() {
            if bits & (1 << r.index()) != 0 {
                s.insert(r);
                reference.insert(r.index());
            }
        }
        prop_assert_eq!(s.len(), reference.len());
        for r in Reg::all() {
            prop_assert_eq!(s.contains(r), reference.contains(&r.index()));
        }
        prop_assert_eq!(
            s.iter().map(|r| r.index()).collect::<Vec<_>>(),
            reference.into_iter().collect::<Vec<_>>()
        );
    }

    /// Generation parameters stay valid under the jitter applied to any
    /// suite/name combination.
    #[test]
    fn jittered_params_always_valid(seed in 0u64..100_000) {
        let spec = minigraphs::workloads::BenchmarkSpec::new(Suite::SpecInt, &format!("x{seed}"));
        prop_assert!(spec.params.is_valid());
        let base: GenParams = Suite::SpecInt.base_params();
        let m: OpMix = base.mix;
        prop_assert!(m.is_valid());
    }
}
