//! Build a program by hand with the `mg-isa` builder API, embed a
//! mini-graph manually, and watch the bandwidth amplification on a very
//! narrow machine — the library as a toolkit rather than a harness.
//!
//! Run with: `cargo run --release --example custom_program`

use minigraphs::isa::{BrCond, Instruction, MgTag, ProgramBuilder, Reg};
use minigraphs::sim::{simulate, MachineConfig, MgConfig, SimOptions};
use minigraphs::workloads::Executor;

fn build(tagged: bool) -> minigraphs::isa::Program {
    let mut pb = ProgramBuilder::new(if tagged { "dotpr+mg" } else { "dotpr" });
    let main = pb.func("main");
    let head = pb.block(main);
    let body = pb.block(main);
    let exit = pb.block(main);

    // A toy dot-product-ish kernel: two strided loads, multiply-free
    // combine (shift/add), accumulate, loop.
    pb.push(head, Instruction::li(Reg::R1, 2000)); // trip count
    pb.push(head, Instruction::li(Reg::R2, 0x10_0000)); // a*
    pb.push(head, Instruction::li(Reg::R3, 0x20_0000)); // b*
    pb.push(head, Instruction::li(Reg::R4, 0)); // acc
    pb.set_fallthrough(head, body);

    let tag = |pos, len| MgTag {
        instance: 0,
        template: 0,
        pos,
        len,
    };
    let mk = |inst: Instruction, pos: u8| {
        if tagged {
            inst.with_mg(tag(pos, 3))
        } else {
            inst
        }
    };

    pb.push(body, Instruction::load(Reg::R5, Reg::R2, 0));
    pb.push(body, Instruction::load(Reg::R6, Reg::R3, 0));
    // The embedded mini-graph: shift, combine, fold into the accumulator.
    pb.push(body, mk(Instruction::shli(Reg::R7, Reg::R5, 1), 0));
    pb.push(body, mk(Instruction::add(Reg::R8, Reg::R7, Reg::R6), 1));
    pb.push(body, mk(Instruction::add(Reg::R4, Reg::R4, Reg::R8), 2));
    pb.push(body, Instruction::addi(Reg::R2, Reg::R2, 8));
    pb.push(body, Instruction::addi(Reg::R3, Reg::R3, 8));
    pb.push(body, Instruction::addi(Reg::R1, Reg::R1, -1));
    pb.push(body, Instruction::br(BrCond::Ne, Reg::R1, Reg::ZERO, body));
    pb.set_fallthrough(body, exit);
    pb.push(exit, Instruction::halt());
    pb.build().expect("hand-built program is valid")
}

fn main() {
    let plain = build(false);
    let tagged = build(true);

    let (pt, ps) = Executor::new(&plain).run().expect("runs");
    let (tt, ts) = Executor::new(&tagged).run().expect("runs");
    assert_eq!(
        ps.read(Reg::R4),
        ts.read(Reg::R4),
        "tagging preserves semantics"
    );
    println!("kernel result: {}", ps.read(Reg::R4));

    let narrow = MachineConfig::two_way();
    let r_plain = simulate(&plain, &pt, &narrow, SimOptions::default());
    let r_mg = simulate(
        &tagged,
        &tt,
        &narrow.clone().with_mg(MgConfig::paper()),
        SimOptions::default(),
    );
    println!(
        "2-wide machine: {:.3} IPC singleton vs {:.3} IPC with the mini-graph \
         ({:.1}% faster, coverage {:.0}%)",
        r_plain.ipc(),
        r_mg.ipc(),
        100.0 * (r_mg.ipc() / r_plain.ipc() - 1.0),
        100.0 * r_mg.stats.coverage(),
    );
    println!(
        "handles committed: {}, instructions embedded: {}",
        r_mg.stats.mg_handles, r_mg.stats.mg_embedded_instrs
    );
}
