//! Design-space exploration: how does a mini-graph machine trade
//! resources for coverage? Sweeps machine width with and without
//! Slack-Profile mini-graphs — the paper's "performance with fewer
//! resources" pitch in one table.
//!
//! Run with: `cargo run --release --example design_space [benchmark]`

use minigraphs::core::candidate::SelectionConfig;
use minigraphs::core::pipeline::{prepare, profile_workload};
use minigraphs::core::select::Selector;
use minigraphs::sim::{simulate, MachineConfig, MgConfig, SimOptions};
use minigraphs::workloads::{benchmark, Executor};

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "media_jpeg_enc".to_string());
    let spec = benchmark(&name).expect("benchmark exists");
    let workload = spec.generate();

    let machines = [
        MachineConfig::two_way(),
        MachineConfig::reduced(),
        MachineConfig::baseline(),
        MachineConfig::eight_way(),
    ];
    // Train the profile on the middle (reduced) configuration.
    let (trace, freqs, slack) = profile_workload(&workload, &MachineConfig::reduced());
    let prepared = prepare(
        &workload.program,
        &freqs,
        &Selector::SlackProfile(Default::default(), slack),
        &SelectionConfig::default(),
    );
    let (mg_trace, _) = Executor::new(&prepared.program)
        .run_with_mem(&workload.init_mem)
        .expect("rewritten program runs");

    println!(
        "design space for {name} (Slack-Profile, coverage est {:.1}%)",
        100.0 * prepared.est_coverage
    );
    println!(
        "{:<16} {:>10} {:>12} {:>10}",
        "machine", "IPC", "IPC w/ MG", "MG gain"
    );
    for m in &machines {
        let plain = simulate(&workload.program, &trace, m, SimOptions::default());
        let mg = simulate(
            &prepared.program,
            &mg_trace,
            &m.clone().with_mg(MgConfig::paper()),
            SimOptions::default(),
        );
        println!(
            "{:<16} {:>10.3} {:>12.3} {:>9.1}%",
            m.name,
            plain.ipc(),
            mg.ipc(),
            100.0 * (mg.ipc() / plain.ipc() - 1.0)
        );
    }
    println!(
        "\nThe paper's claim: the 3-wide machine with mini-graphs should land\n\
         at or above the plain 4-wide machine's IPC."
    );
}
