//! Slack explorer: dig into one benchmark's local slack profile and see
//! how the Slack-Profile model judges individual mini-graph candidates
//! (rules #1-#4, as in the paper's Figure 5 walk-through).
//!
//! Run with: `cargo run --release --example slack_explorer [benchmark]`

use minigraphs::core::candidate::{enumerate, SelectionConfig};
use minigraphs::core::classify::{classify, Serialization};
use minigraphs::core::pipeline::profile_workload;
use minigraphs::core::select::{delay_model, slack_profile_admits, SlackProfileModel};
use minigraphs::sim::MachineConfig;
use minigraphs::workloads::benchmark;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "comm_md5".to_string());
    let spec = benchmark(&name).expect("benchmark exists (e.g. comm_md5, spec_mcf)");
    let workload = spec.generate();
    let reduced = MachineConfig::reduced();
    let (_, freqs, slack) = profile_workload(&workload, &reduced);

    // Slack distribution over executed instructions.
    let mut hist = [0usize; 8]; // 0, 1-2, 3-4, 5-8, 9-16, 17-32, 33-63, 64
    for (i, rec) in slack.per_static.iter().enumerate() {
        if rec.count == 0 || freqs[i] == 0 {
            continue;
        }
        let s = rec.local_slack;
        let bucket = if s < 0.5 {
            0
        } else if s <= 2.0 {
            1
        } else if s <= 4.0 {
            2
        } else if s <= 8.0 {
            3
        } else if s <= 16.0 {
            4
        } else if s <= 32.0 {
            5
        } else if s < 64.0 {
            6
        } else {
            7
        };
        hist[bucket] += 1;
    }
    println!("local slack distribution for {name} (static instructions):");
    for (label, n) in ["0", "1-2", "3-4", "5-8", "9-16", "17-32", "33-63", ">=64"]
        .iter()
        .zip(hist)
    {
        println!("  {label:>6}: {n}");
    }

    // Candidate verdicts by structural class.
    let pool = enumerate(&workload.program, &SelectionConfig::default());
    let model = SlackProfileModel::default();
    let mut stats = [[0usize; 2]; 3]; // [class][accepted?]
    for c in &pool {
        let class = match classify(&c.shape) {
            Serialization::None => 0,
            Serialization::Bounded(_) => 1,
            Serialization::Unbounded => 2,
        };
        let ok = slack_profile_admits(&workload.program, c, &slack, &model);
        stats[class][ok as usize] += 1;
    }
    println!("\nSlack-Profile verdicts over {} candidates:", pool.len());
    for (label, row) in ["non-serializing", "bounded", "unbounded"]
        .iter()
        .zip(stats)
    {
        println!(
            "  {label:<16} accepted {:>5}  rejected {:>5}",
            row[1], row[0]
        );
    }

    // Walk one interesting rejected candidate through the model, like the
    // paper's Figure 5 example.
    if let Some(c) = pool.iter().find(|c| {
        c.shape.potentially_serializing()
            && !slack_profile_admits(&workload.program, c, &slack, &model)
            && freqs[workload.program.id_of(c.block, c.positions[0]).index()] > 0
    }) {
        let dm = delay_model(&workload.program, c, &slack);
        println!(
            "\nworked example: rejected candidate in {} at {:?}",
            c.block, c.positions
        );
        for (p, &pos) in c.positions.iter().enumerate() {
            let id = workload.program.id_of(c.block, pos);
            let rec = slack.get(id);
            println!(
                "  [{p}] {:<24} issue {:>6.2} -> issue_mg {:>6.2}  delay {:>5.2}  slack {:>5.2}",
                workload.program.inst(id).to_string(),
                rec.issue_rel,
                dm.issue_mg[p],
                dm.delay[p],
                rec.local_slack,
            );
        }
    }
}
