//! Quickstart: generate a benchmark, select mini-graphs with every
//! selector, and compare the reduced machine against the full baseline.
//!
//! Run with: `cargo run --release --example quickstart`

use minigraphs::core::candidate::SelectionConfig;
use minigraphs::core::pipeline::{prepare, profile_workload};
use minigraphs::core::select::Selector;
use minigraphs::sim::{simulate, MachineConfig, MgConfig, SimOptions};
use minigraphs::workloads::{benchmark, Executor};

fn main() {
    // 1. Pick a benchmark from the 78-entry suite and generate it.
    let spec = benchmark("mib_sha").expect("registry contains mib_sha");
    let workload = spec.generate();
    println!(
        "benchmark {}: {} static instructions",
        spec.name,
        workload.program.static_count()
    );

    // 2. Profile a singleton run on the target (reduced) machine: this
    //    yields the committed trace, per-instruction frequencies, and the
    //    local slack profile the Slack-Profile selector needs.
    let baseline = MachineConfig::baseline();
    let reduced = MachineConfig::reduced();
    let (trace, freqs, slack) = profile_workload(&workload, &reduced);
    println!("profiled {} dynamic instructions", trace.len());

    // 3. Reference points: both machines without mini-graphs.
    let base_run = simulate(&workload.program, &trace, &baseline, SimOptions::default());
    let red_run = simulate(&workload.program, &trace, &reduced, SimOptions::default());
    println!(
        "no mini-graphs: baseline IPC {:.3}, reduced IPC {:.3} ({:+.1}%)",
        base_run.ipc(),
        red_run.ipc(),
        100.0 * (red_run.ipc() / base_run.ipc() - 1.0)
    );

    // 4. Select + embed mini-graphs with each selector, then run the
    //    rewritten program on the reduced machine with MG support.
    let selectors = [
        Selector::StructAll,
        Selector::StructNone,
        Selector::StructBounded,
        Selector::SlackProfile(Default::default(), slack),
    ];
    for selector in selectors {
        let prepared = prepare(
            &workload.program,
            &freqs,
            &selector,
            &SelectionConfig::default(),
        );
        // Mini-graph tags do not change semantics, but the rewriter may
        // reorder within blocks, so re-derive the committed path.
        let (mg_trace, _) = Executor::new(&prepared.program)
            .run_with_mem(&workload.init_mem)
            .expect("rewritten program runs");
        let mg_machine = reduced.clone().with_mg(MgConfig::paper());
        let run = simulate(
            &prepared.program,
            &mg_trace,
            &mg_machine,
            SimOptions::default(),
        );
        println!(
            "{:<16} {:>4} instances, {:>3} templates, coverage {:>5.1}%, reduced IPC {:.3} ({:+.1}% vs baseline)",
            selector.name(),
            prepared.instances,
            prepared.templates,
            100.0 * run.stats.coverage(),
            run.ipc(),
            100.0 * (run.ipc() / base_run.ipc() - 1.0),
        );
    }
}
