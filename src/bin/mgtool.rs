//! `mgtool` — command-line companion for the minigraphs library.
//!
//! ```text
//! mgtool list                         list the benchmark registry
//! mgtool disasm <bench> [N]           disassemble a benchmark (first N lines)
//! mgtool run <bench> [machine]        run a benchmark and print statistics
//! mgtool candidates <bench>           summarize the mini-graph candidate pool
//! mgtool select <bench> [selector]    select, embed, and evaluate mini-graphs
//! ```
//!
//! Machines: `baseline`, `reduced`, `2way`, `8way`, `dmem4`.
//! Selectors: `struct-all`, `struct-none`, `struct-bounded`,
//! `slack-profile`, `slack-profile-mem`.

use minigraphs::core::candidate::{enumerate, SelectionConfig};
use minigraphs::core::classify::{classify, Serialization};
use minigraphs::core::pipeline::{prepare, profile_workload};
use minigraphs::core::select::{Selector, SlackProfileModel};
use minigraphs::sim::{simulate, MachineConfig, MgConfig, SimOptions};
use minigraphs::workloads::{benchmark, suite, Executor};
use std::process::ExitCode;

fn machine(name: &str) -> Option<MachineConfig> {
    Some(match name {
        "baseline" | "4way" => MachineConfig::baseline(),
        "reduced" | "3way" => MachineConfig::reduced(),
        "2way" => MachineConfig::two_way(),
        "8way" => MachineConfig::eight_way(),
        "dmem4" => MachineConfig::reduced_dmem4(),
        _ => return None,
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("disasm") => cmd_disasm(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("candidates") => cmd_candidates(&args[1..]),
        Some("select") => cmd_select(&args[1..]),
        _ => {
            eprintln!("usage: mgtool <list|disasm|run|candidates|select> [...]");
            eprintln!("see `mgtool` module docs for details");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_list() -> Result<(), String> {
    println!(
        "{:<20} {:<14} {:>8} {:>10} {:>8}",
        "name", "suite", "static", "target-dyn", "nests"
    );
    for spec in suite() {
        let w = spec.generate();
        println!(
            "{:<20} {:<14} {:>8} {:>10} {:>8}",
            spec.name,
            spec.suite.to_string(),
            w.program.static_count(),
            spec.params.target_dyn,
            spec.params.loop_nests,
        );
    }
    Ok(())
}

fn spec_of(args: &[String]) -> Result<minigraphs::workloads::BenchmarkSpec, String> {
    let name = args.first().ok_or("missing benchmark name")?;
    benchmark(name).ok_or_else(|| format!("unknown benchmark {name} (try `mgtool list`)"))
}

fn cmd_disasm(args: &[String]) -> Result<(), String> {
    let spec = spec_of(args)?;
    let limit: usize = args
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(usize::MAX);
    let w = spec.generate();
    for (i, line) in w.program.to_string().lines().enumerate() {
        if i >= limit {
            println!(
                "... ({} static instructions total)",
                w.program.static_count()
            );
            break;
        }
        println!("{line}");
    }
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let spec = spec_of(args)?;
    let mname = args.get(1).map(String::as_str).unwrap_or("baseline");
    let m = machine(mname).ok_or_else(|| format!("unknown machine {mname}"))?;
    let w = spec.generate();
    let (trace, _) = Executor::new(&w.program)
        .run_with_mem(&w.init_mem)
        .map_err(|e| e.to_string())?;
    let r = simulate(&w.program, &trace, &m, SimOptions::default());
    println!("{} on {}:", spec.name, m.name);
    println!("  instructions   {}", r.stats.committed_instrs);
    println!("  cycles         {}", r.stats.cycles);
    println!("  IPC            {:.3}", r.ipc());
    println!(
        "  branch MPKI    {:.2}",
        1000.0 * r.stats.bpred.dir_mispredicts as f64 / r.stats.committed_instrs as f64
    );
    println!("  D-L1 miss rate {:.2}%", 100.0 * r.stats.dl1.miss_rate());
    println!("  L2 miss rate   {:.2}%", 100.0 * r.stats.l2.miss_rate());
    println!("  order flushes  {}", r.stats.violation_flushes);
    Ok(())
}

fn cmd_candidates(args: &[String]) -> Result<(), String> {
    let spec = spec_of(args)?;
    let w = spec.generate();
    let pool = enumerate(&w.program, &SelectionConfig::default());
    let mut by_class = [0usize; 3];
    let mut by_size = [0usize; 5];
    for c in &pool {
        let k = match classify(&c.shape) {
            Serialization::None => 0,
            Serialization::Bounded(_) => 1,
            Serialization::Unbounded => 2,
        };
        by_class[k] += 1;
        by_size[c.len().min(4)] += 1;
    }
    println!("{}: {} candidates", spec.name, pool.len());
    println!("  non-serializing {:>6}", by_class[0]);
    println!("  bounded         {:>6}", by_class[1]);
    println!("  unbounded       {:>6}", by_class[2]);
    println!(
        "  by size: 2 -> {}, 3 -> {}, 4 -> {}",
        by_size[2], by_size[3], by_size[4]
    );
    Ok(())
}

fn cmd_select(args: &[String]) -> Result<(), String> {
    let spec = spec_of(args)?;
    let sname = args.get(1).map(String::as_str).unwrap_or("slack-profile");
    let w = spec.generate();
    let reduced = MachineConfig::reduced();
    let (trace, freqs, slack) = profile_workload(&w, &reduced);
    let selector = match sname {
        "struct-all" => Selector::StructAll,
        "struct-none" => Selector::StructNone,
        "struct-bounded" => Selector::StructBounded,
        "slack-profile" => Selector::SlackProfile(Default::default(), slack),
        "slack-profile-mem" => Selector::SlackProfile(SlackProfileModel::miss_aware(), slack),
        other => return Err(format!("unknown selector {other}")),
    };
    let prepared = prepare(&w.program, &freqs, &selector, &SelectionConfig::default());
    let (mg_trace, _) = Executor::new(&prepared.program)
        .run_with_mem(&w.init_mem)
        .map_err(|e| e.to_string())?;
    let baseline = simulate(
        &w.program,
        &trace,
        &MachineConfig::baseline(),
        SimOptions::default(),
    );
    let plain = simulate(&w.program, &trace, &reduced, SimOptions::default());
    let mg = simulate(
        &prepared.program,
        &mg_trace,
        &reduced.clone().with_mg(MgConfig::paper()),
        SimOptions::default(),
    );
    println!("{} with {}:", spec.name, selector.name());
    println!("  instances        {}", prepared.instances);
    println!("  templates        {}", prepared.templates);
    println!(
        "  coverage         {:.1}% (estimated {:.1}%)",
        100.0 * mg.stats.coverage(),
        100.0 * prepared.est_coverage
    );
    println!("  baseline 4-wide  {:.3} IPC", baseline.ipc());
    println!(
        "  reduced, no MG   {:.3} IPC ({:+.1}%)",
        plain.ipc(),
        100.0 * (plain.ipc() / baseline.ipc() - 1.0)
    );
    println!(
        "  reduced + MG     {:.3} IPC ({:+.1}%)",
        mg.ipc(),
        100.0 * (mg.ipc() / baseline.ipc() - 1.0)
    );
    println!(
        "  serialized handles {} (harmful {})",
        mg.stats.serialized_handles, mg.stats.harmful_serializations
    );
    Ok(())
}
