//! Facade crate for the minigraphs workspace: re-exports the ISA,
//! workload, simulator, and selection crates under one roof, plus a
//! convenience [`prelude`].
//!
//! This workspace reproduces *"Serialization-Aware Mini-Graphs:
//! Performance with Fewer Resources"* (Bracy & Roth, MICRO 2006). See the
//! repository `README.md` for a tour and `DESIGN.md` for the system
//! inventory.
//!
//! # Quickstart
//!
//! ```
//! use minigraphs::prelude::*;
//!
//! // Generate a small synthetic benchmark and inspect its program.
//! let bench = suite().into_iter().next().expect("suite is non-empty");
//! let workload = bench.generate();
//! assert!(workload.program.static_count() > 0);
//! ```

pub use mg_core as core;
pub use mg_isa as isa;
#[cfg(feature = "obs")]
pub use mg_obs as obs;
pub use mg_sim as sim;
pub use mg_workloads as workloads;

/// Commonly used items, re-exported for glob import.
pub mod prelude {
    pub use mg_core::prelude::*;
    pub use mg_isa::{
        BasicBlock, BlockId, BrCond, Instruction, Opcode, Program, ProgramBuilder, Reg, StaticId,
    };
    pub use mg_sim::prelude::*;
    pub use mg_workloads::prelude::*;
}
